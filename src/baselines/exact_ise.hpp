// Exact minimum-calibration solver for small integral instances.
//
// Used by the experiments to measure *true* approximation ratios (E5-E7).
// Exponential by design; a node budget keeps it honest.
//
// Completeness: for integral instances, repeatedly left-shifting any
// feasible schedule (shift the earliest unblocked event until it meets a
// release time, a same-machine predecessor's completion, or its
// calibration boundary) reaches a fixpoint whose event times are all sums
// of instance data, hence integers. It therefore suffices to search
// integer calibration start times. For each candidate calibration count K
// (from the combinatorial lower bound upward) the solver enumerates
// nondecreasing K-tuples of start times whose maximum overlap fits the
// machine count, colors them greedily onto machines, and packs jobs by
// depth-first search with an exact single-machine feasibility check per
// calibration.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"

namespace calisched {

struct ExactIseOptions {
  std::int64_t node_budget = 5'000'000;
  /// Hard cap on the calibration count the search will try.
  int max_calibrations = 16;
  /// Restrict job placement to calibrations nested in the job's window
  /// (exact *TISE* optimum instead of exact ISE optimum).
  bool require_tise = false;
  /// Deadline + cancellation, polled inside the search loops.
  RunLimits limits;
};

struct ExactIseResult {
  /// True when the search ran to completion (budget not exhausted).
  bool solved = false;
  /// True when a feasible schedule with <= max_calibrations exists.
  bool feasible = false;
  /// kOk (optimum found), kInfeasible (exhausted the calibration cap),
  /// kLimitExceeded (node budget), kDeadlineExceeded / kCancelled.
  SolveStatus status = SolveStatus::kOk;
  std::size_t optimal_calibrations = 0;
  Schedule schedule;  ///< an optimal schedule when feasible
  std::int64_t nodes = 0;
};

[[nodiscard]] ExactIseResult solve_exact_ise(const Instance& instance,
                                             const ExactIseOptions& options = {});

}  // namespace calisched

// Exact minimum-calibration solver for small integral instances.
//
// Used by the experiments to measure *true* approximation ratios (E5-E7).
// Exponential by design; a node budget keeps it honest.
//
// Completeness: for integral instances, repeatedly left-shifting any
// feasible schedule (shift the earliest unblocked event until it meets a
// release time, a same-machine predecessor's completion, or its
// calibration boundary) reaches a fixpoint whose event times are all sums
// of instance data, hence integers. It therefore suffices to search
// integer calibration start times.
//
// Two engines share that argument:
//   * kStateSpace (default) — the layered state-space exploration of
//     src/exact/state_space.hpp, which merges partial schedules with equal
//     summaries and prunes dominated ones; this is what pushes certified
//     optima well past the branch-and-bound sizes.
//   * kBranchBound — the original search, kept as a differential oracle:
//     for each candidate calibration count K (from the combinatorial lower
//     bound upward) enumerate nondecreasing K-tuples of start times whose
//     maximum overlap fits the machine count, color them greedily onto
//     machines, and pack jobs by depth-first search with an exact
//     single-machine feasibility check per calibration.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "exact/engine.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"

namespace calisched {

class TraceContext;

struct ExactIseOptions {
  /// Node/state budget; `limits.node_budget` overrides it when nonzero.
  std::int64_t node_budget = 5'000'000;
  /// Hard cap on the calibration count the search will try.
  int max_calibrations = 16;
  /// Restrict job placement to calibrations nested in the job's window
  /// (exact *TISE* optimum instead of exact ISE optimum).
  bool require_tise = false;
  /// Which exact engine to run (results agree; speed differs).
  ExactEngine engine = ExactEngine::kStateSpace;
  /// Deadline + cancellation, polled inside the search loops.
  RunLimits limits;
  /// Optional trace sink; the state-space engine emits a span per layer.
  TraceContext* trace = nullptr;
};

struct ExactIseResult {
  /// True when the search ran to completion (budget not exhausted).
  bool solved = false;
  /// True when a feasible schedule with <= max_calibrations exists.
  bool feasible = false;
  /// kOk (optimum found), kInfeasible (exhausted the calibration cap),
  /// kLimitExceeded (node budget), kDeadlineExceeded / kCancelled.
  SolveStatus status = SolveStatus::kOk;
  std::size_t optimal_calibrations = 0;
  Schedule schedule;  ///< an optimal schedule when feasible
  std::int64_t nodes = 0;
};

[[nodiscard]] ExactIseResult solve_exact_ise(const Instance& instance,
                                             const ExactIseOptions& options = {});

}  // namespace calisched

// GreedyLazyIse — lazy binning generalized to non-unit processing times.
// See the class comment in baseline.hpp for the policy.
#include <algorithm>
#include <limits>
#include <vector>

#include "baselines/baseline.hpp"
#include "util/arith.hpp"

namespace calisched {
namespace {

/// An open calibration and the runs already packed into it.
struct OpenCalibration {
  int machine;
  Time start;
  std::vector<std::pair<Time, Time>> runs;  // sorted, disjoint [s, e)

  /// Earliest start for a p-length run inside this calibration, within
  /// [release, deadline), avoiding existing runs; -max() when impossible.
  [[nodiscard]] Time earliest_fit(Time T, Time p, Time release,
                                  Time deadline) const {
    const Time lo = std::max(start, release);
    const Time hi = std::min(start + T, deadline);
    Time cursor = lo;
    for (const auto& [s, e] : runs) {
      if (cursor + p <= std::min(s, hi)) return cursor;
      cursor = std::max(cursor, e);
    }
    if (cursor + p <= hi) return cursor;
    return std::numeric_limits<Time>::min();
  }

  void insert_run(Time s, Time p) {
    runs.emplace_back(s, s + p);
    std::sort(runs.begin(), runs.end());
  }
};

}  // namespace

BaselineResult GreedyLazyIse::solve(const Instance& instance,
                                    const RunLimits& limits) const {
  BaselineResult result;
  LimitPoller poller(limits, /*stride=*/16);
  const Time T = instance.T;
  const int m = instance.machines;

  // Most-urgent-first (deadline, release, id).
  std::vector<const Job*> order;
  order.reserve(instance.size());
  for (const Job& job : instance.jobs) order.push_back(&job);
  std::sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    if (a->deadline != b->deadline) return a->deadline < b->deadline;
    if (a->release != b->release) return a->release < b->release;
    return a->id < b->id;
  });

  std::vector<OpenCalibration> calibrations;
  std::vector<std::vector<Time>> machine_starts(static_cast<std::size_t>(m));
  Schedule schedule = Schedule::empty_like(instance, m);

  for (std::size_t index = 0; index < order.size(); ++index) {
    if (poller.poll() != SolveStatus::kOk) {
      return fail_result(result, poller.status());
    }
    const Job& job = *order[index];
    // 1) Reuse: earliest feasible start across open calibrations.
    OpenCalibration* best_cal = nullptr;
    Time best_start = std::numeric_limits<Time>::max();
    for (OpenCalibration& cal : calibrations) {
      const Time s = cal.earliest_fit(T, job.proc, job.release, job.deadline);
      if (s != std::numeric_limits<Time>::min() && s < best_start) {
        best_start = s;
        best_cal = &cal;
      }
    }
    if (best_cal != nullptr) {
      best_cal->insert_run(best_start, job.proc);
      schedule.jobs.push_back({job.id, best_cal->machine, best_start});
      continue;
    }

    // 2) Open a new calibration as late as the work due by d_j allows:
    //    the unscheduled jobs with deadline <= d_j need their total work
    //    done by then, so aim for t = d_j - max(p_j, ceil(W_due / m)),
    //    clamped so the job itself still fits ([t, t+T) must reach d_j
    //    when t <= d_j - T would cut it off).
    Time due_work = 0;
    for (std::size_t k = index; k < order.size(); ++k) {
      if (order[k]->deadline <= job.deadline) due_work += order[k]->proc;
    }
    const Time lead = std::max<Time>(job.proc, ceil_div(due_work, m));
    const Time target = std::max(job.deadline - T, job.deadline - lead);

    int chosen_machine = -1;
    Time chosen_start = std::numeric_limits<Time>::min();
    for (int machine = 0; machine < m; ++machine) {
      const auto& starts = machine_starts[static_cast<std::size_t>(machine)];
      // Latest t <= target with [t, t+T) clear of this machine's
      // calibrations.
      Time t = target;
      for (;;) {
        Time blocker = std::numeric_limits<Time>::min();
        bool blocked = false;
        for (const Time s : starts) {
          if (s < t + T && t < s + T) {
            blocked = true;
            blocker = std::max(blocker, s);
          }
        }
        if (!blocked) break;
        t = blocker - T;
      }
      // The job must fit: start >= max(t, r_j), start + p <= min(t+T, d_j).
      const Time s = std::max(t, job.release);
      if (s + job.proc > std::min(t + T, job.deadline)) continue;
      if (t > chosen_start) {
        chosen_start = t;
        chosen_machine = machine;
      }
    }
    if (chosen_machine < 0) {
      return fail_result(result, SolveStatus::kInfeasible,
                         "no machine can open a calibration for job " +
                             std::to_string(job.id),
                         "greedy-lazy");
    }
    OpenCalibration cal{chosen_machine, chosen_start, {}};
    const Time s = std::max(chosen_start, job.release);
    cal.insert_run(s, job.proc);
    schedule.jobs.push_back({job.id, chosen_machine, s});
    schedule.calibrations.push_back({chosen_machine, chosen_start});
    machine_starts[static_cast<std::size_t>(chosen_machine)].push_back(
        chosen_start);
    calibrations.push_back(std::move(cal));
  }
  schedule.normalize();
  result.feasible = true;
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace calisched

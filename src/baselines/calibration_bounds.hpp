// Machine-independent lower bounds on the number of calibrations.
//
// Used to measure realized approximation ratios in the experiments (the
// denominators of the "ours / lower-bound" columns).
#pragma once

#include "core/instance.hpp"

namespace calisched {

/// Work bound: every calibration hosts at most T units of work, so
/// C >= ceil(total work / T).
[[nodiscard]] std::int64_t calibration_work_bound(const Instance& instance);

/// Windowed-work bound with separation. For a window [a, b) (a a release,
/// b a deadline), jobs nested in it force ceil(nested work / T)
/// calibrations that intersect [a, b). Windows separated by at least T
/// cannot share a calibration, so any family of such windows with pairwise
/// gaps >= T gives an *additive* bound. This computes the best family by
/// weighted-interval-scheduling DP over the O(n^2) canonical windows.
/// Always >= calibration_work_bound (the full span is one candidate).
[[nodiscard]] std::int64_t calibration_windowed_bound(const Instance& instance);

/// max(1, windowed bound) for non-empty instances; 0 when empty.
[[nodiscard]] std::int64_t calibration_lower_bound(const Instance& instance);

}  // namespace calisched

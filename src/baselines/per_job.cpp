#include <algorithm>
#include <vector>

#include "baselines/baseline.hpp"

namespace calisched {

BaselineResult PerJobCalibration::solve(const Instance& instance,
                                        const RunLimits& limits) const {
  BaselineResult result;
  LimitPoller poller(limits, /*stride=*/64);
  // Calibration intervals [r_j, r_j + T); greedy interval coloring gives
  // the minimum number of machines (max overlap).
  struct Entry {
    const Job* job;
  };
  std::vector<const Job*> order;
  order.reserve(instance.size());
  for (const Job& job : instance.jobs) order.push_back(&job);
  std::sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->release != b->release ? a->release < b->release : a->id < b->id;
  });

  std::vector<Time> machine_busy_until;  // end of last calibration per machine
  Schedule schedule = Schedule::empty_like(instance, 0);
  for (const Job* job : order) {
    if (poller.poll() != SolveStatus::kOk) {
      return fail_result(result, poller.status());
    }
    int machine = -1;
    for (std::size_t i = 0; i < machine_busy_until.size(); ++i) {
      if (machine_busy_until[i] <= job->release) {
        machine = static_cast<int>(i);
        break;
      }
    }
    if (machine < 0) {
      machine = static_cast<int>(machine_busy_until.size());
      machine_busy_until.push_back(0);
    }
    machine_busy_until[static_cast<std::size_t>(machine)] =
        job->release + instance.T;
    schedule.calibrations.push_back({machine, job->release});
    schedule.jobs.push_back({job->id, machine, job->release});
  }
  schedule.machines = static_cast<int>(machine_busy_until.size());
  schedule.normalize();
  result.feasible = true;
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace calisched

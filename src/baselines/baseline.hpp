// Baseline ISE algorithms the experiments compare against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"

namespace calisched {

struct BaselineResult {
  bool feasible = false;
  /// Structured outcome: kInfeasible when the greedy gave up (honest
  /// failure), kDeadlineExceeded / kCancelled when `limits` fired.
  SolveStatus status = SolveStatus::kOk;
  Schedule schedule;  ///< verifier-clean ISE schedule when feasible
  std::string error;
};

/// Interface for simple reference algorithms. Unlike the paper's pipeline,
/// baselines may fail on feasible instances; they report it honestly.
/// Implementations poll `limits` at least once per job placed.
class IseBaseline {
 public:
  virtual ~IseBaseline() = default;
  [[nodiscard]] virtual BaselineResult solve(const Instance& instance,
                                             const RunLimits& limits) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Unlimited run (legacy signature; forwards RunLimits::none()).
  [[nodiscard]] BaselineResult solve(const Instance& instance) const {
    return solve(instance, RunLimits::none());
  }
};

/// One calibration per job: job j runs at r_j inside its own calibration
/// [r_j, r_j + T); calibrations are interval-colored onto machines. Always
/// feasible (with enough machines); uses exactly n calibrations. The
/// "no sharing" upper baseline.
class PerJobCalibration final : public IseBaseline {
 public:
  using IseBaseline::solve;
  [[nodiscard]] BaselineResult solve(const Instance& instance,
                                     const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override { return "per-job"; }
};

/// Keep all m machines calibrated back-to-back over the whole horizon and
/// run EDF inside the resulting grid (jobs may not cross grid boundaries).
/// The "always calibrated" upper baseline: ~ m * ceil(span / T)
/// calibrations; may fail on tight instances (reported, not hidden).
class SaturateCalibration final : public IseBaseline {
 public:
  using IseBaseline::solve;
  [[nodiscard]] BaselineResult solve(const Instance& instance,
                                     const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override { return "saturate"; }
};

/// Reconstruction of the lazy-binning greedy of Bender, Bunde, Leung,
/// McCauley, Phillips (SPAA'13) for *unit* jobs: repeatedly take the most
/// urgent unscheduled job; if an already-open calibration has a free slot
/// inside the job's window, use the earliest such slot; otherwise open a
/// new calibration as late as possible (at d_j - 1). The SPAA'13 text was
/// not available offline; this follows the published summary (optimal when
/// a 1-machine schedule exists, 2-approximation on m machines) in spirit,
/// and the tests only rely on feasibility plus measured quality.
class BenderUnitLazyBinning final : public IseBaseline {
 public:
  using IseBaseline::solve;
  [[nodiscard]] BaselineResult solve(const Instance& instance,
                                     const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override { return "bender-lazy"; }
};

/// Lazy greedy for *non-unit* jobs — our practical generalization of lazy
/// binning, with no approximation guarantee (the paper's open problem is
/// exactly that such greedies were only analyzed for p_j = 1):
/// process jobs most-urgent-first; reuse the earliest feasible gap inside
/// an already-open calibration; otherwise open a new calibration as late
/// as the urgent work due by d_j allows. Fails honestly when its greedy
/// choices paint it into a corner on the given machine count.
class GreedyLazyIse final : public IseBaseline {
 public:
  using IseBaseline::solve;
  [[nodiscard]] BaselineResult solve(const Instance& instance,
                                     const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override { return "greedy-lazy"; }
};

}  // namespace calisched

// Lazy-binning greedy for unit jobs (reconstruction of Bender et al.,
// SPAA'13; see the class comment in baseline.hpp).
#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "baselines/baseline.hpp"

namespace calisched {
namespace {

struct OpenCalibration {
  int machine;
  Time start;
  std::vector<bool> occupied;  // one flag per unit slot in [start, start + T)
};

/// Earliest free unit slot of `cal` inside [release, deadline), or -1.
Time earliest_free_slot(const OpenCalibration& cal, Time T, Time release,
                        Time deadline) {
  const Time lo = std::max(cal.start, release);
  const Time hi = std::min(cal.start + T, deadline);
  for (Time s = lo; s < hi; ++s) {
    if (!cal.occupied[static_cast<std::size_t>(s - cal.start)]) return s;
  }
  return -1;
}

}  // namespace

BaselineResult BenderUnitLazyBinning::solve(const Instance& instance,
                                            const RunLimits& limits) const {
  BaselineResult result;
  LimitPoller poller(limits, /*stride=*/16);
  for (const Job& job : instance.jobs) {
    if (job.proc != 1) {
      return fail_result(result, SolveStatus::kInfeasible,
                         "requires unit processing times", "bender-lazy");
    }
  }
  const Time T = instance.T;
  const int m = instance.machines;

  // Most-urgent-first processing order (deadline, then release, then id).
  std::vector<const Job*> order;
  order.reserve(instance.size());
  for (const Job& job : instance.jobs) order.push_back(&job);
  std::sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    if (a->deadline != b->deadline) return a->deadline < b->deadline;
    if (a->release != b->release) return a->release < b->release;
    return a->id < b->id;
  });

  std::vector<OpenCalibration> calibrations;
  // Per machine, sorted calibration start times for gap computation.
  std::vector<std::vector<Time>> machine_starts(static_cast<std::size_t>(m));

  Schedule schedule = Schedule::empty_like(instance, m);
  for (const Job* job : order) {
    if (poller.poll() != SolveStatus::kOk) {
      return fail_result(result, poller.status());
    }
    // 1) Reuse: earliest free slot in any open calibration.
    OpenCalibration* best_cal = nullptr;
    Time best_slot = std::numeric_limits<Time>::max();
    for (OpenCalibration& cal : calibrations) {
      const Time slot = earliest_free_slot(cal, T, job->release, job->deadline);
      if (slot >= 0 && slot < best_slot) {
        best_slot = slot;
        best_cal = &cal;
      }
    }
    if (best_cal != nullptr) {
      best_cal->occupied[static_cast<std::size_t>(best_slot - best_cal->start)] =
          true;
      schedule.jobs.push_back({job->id, best_cal->machine, best_slot});
      continue;
    }
    // 2) Open a new calibration as late as possible while leaving room for
    //    the other unscheduled jobs that are due by the same deadline: they
    //    need ceil(|U|/m) slots before d_j, so the lazy start is
    //    t = d_j - ceil(|U|/m), clamped to d_j - T.
    Time due_load = 0;
    for (const Job* other : order) {
      if (other->deadline <= job->deadline) {
        const bool scheduled =
            std::any_of(schedule.jobs.begin(), schedule.jobs.end(),
                        [&](const ScheduledJob& sj) { return sj.job == other->id; });
        if (!scheduled) ++due_load;
      }
    }
    const Time slots_needed = (due_load + m - 1) / m;
    const Time target =
        std::max(job->deadline - T, job->deadline - std::max<Time>(1, slots_needed));
    int chosen_machine = -1;
    Time chosen_start = std::numeric_limits<Time>::min();
    for (int machine = 0; machine < m; ++machine) {
      const auto& starts = machine_starts[static_cast<std::size_t>(machine)];
      // Candidate: latest t <= target such that [t, t+T) avoids all
      // existing calibrations on this machine.
      Time t = target;
      bool placed = false;
      while (!placed) {
        // Find a calibration overlapping [t, t+T); if any, jump left of it.
        const Time t_end = t + T;
        Time blocker = std::numeric_limits<Time>::min();
        bool blocked = false;
        for (const Time s : starts) {
          if (s < t_end && t < s + T) {
            blocked = true;
            blocker = std::max(blocker, s);
          }
        }
        if (!blocked) {
          placed = true;
          break;
        }
        t = blocker - T;  // latest start strictly left of the blocker
      }
      // The calibration must still cover a slot inside the job window.
      const Time slot = std::min(job->deadline, t + T) - 1;
      if (slot < job->release || slot < t) continue;
      if (t > chosen_start) {
        chosen_start = t;
        chosen_machine = machine;
      }
    }
    if (chosen_machine < 0) {
      return fail_result(result, SolveStatus::kInfeasible,
                         "no machine can host a calibration for job " +
                             std::to_string(job->id),
                         "bender-lazy");
    }
    OpenCalibration cal{chosen_machine, chosen_start,
                        std::vector<bool>(static_cast<std::size_t>(T), false)};
    const Time slot = std::min(job->deadline, chosen_start + T) - 1;
    assert(slot >= job->release && slot >= chosen_start);
    cal.occupied[static_cast<std::size_t>(slot - chosen_start)] = true;
    schedule.jobs.push_back({job->id, chosen_machine, slot});
    schedule.calibrations.push_back({chosen_machine, chosen_start});
    machine_starts[static_cast<std::size_t>(chosen_machine)].push_back(
        chosen_start);
    calibrations.push_back(std::move(cal));
  }
  schedule.normalize();
  result.feasible = true;
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace calisched

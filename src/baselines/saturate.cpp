#include <algorithm>
#include <limits>
#include <vector>

#include "baselines/baseline.hpp"
#include "util/arith.hpp"

namespace calisched {

BaselineResult SaturateCalibration::solve(const Instance& instance,
                                          const RunLimits& limits) const {
  BaselineResult result;
  LimitPoller poller(limits, /*stride=*/64);
  if (instance.empty()) {
    result.feasible = true;
    result.schedule = Schedule::empty_like(instance, 0);
    return result;
  }
  const Time T = instance.T;
  const Time origin = instance.min_release();
  const Time horizon = instance.max_deadline();
  const Time slots = ceil_div(horizon - origin, T);
  const int m = instance.machines;

  Schedule schedule = Schedule::empty_like(instance, m);
  for (int machine = 0; machine < m; ++machine) {
    for (Time k = 0; k < slots; ++k) {
      schedule.calibrations.push_back({machine, origin + k * T});
    }
  }

  // EDF into the grid: a job may not cross a multiple-of-T boundary
  // (relative to origin), so a start is bumped to the next boundary when
  // the job would not fit in the remainder of its cell.
  std::vector<Time> free_at(static_cast<std::size_t>(m), origin);
  std::vector<bool> done(instance.size(), false);
  std::size_t remaining = instance.size();
  while (remaining > 0) {
    if (poller.poll() != SolveStatus::kOk) {
      return fail_result(result, poller.status());
    }
    const auto machine_it = std::min_element(free_at.begin(), free_at.end());
    Time min_release = std::numeric_limits<Time>::max();
    for (std::size_t j = 0; j < instance.size(); ++j) {
      if (!done[j]) min_release = std::min(min_release, instance.jobs[j].release);
    }
    const Time now = std::max(*machine_it, min_release);
    std::size_t chosen = instance.size();
    for (std::size_t j = 0; j < instance.size(); ++j) {
      if (done[j] || instance.jobs[j].release > now) continue;
      if (chosen == instance.size() ||
          instance.jobs[j].deadline < instance.jobs[chosen].deadline) {
        chosen = j;
      }
    }
    const Job& job = instance.jobs[chosen];
    // Earliest grid-feasible start at or after `now`.
    Time start = now;
    const Time cell_end = origin + (floor_div(start - origin, T) + 1) * T;
    if (start + job.proc > cell_end) start = cell_end;  // bump to next cell
    if (start + job.proc > job.deadline) {
      return fail_result(result, SolveStatus::kInfeasible,
                         "job " + std::to_string(job.id) +
                             " misses its deadline under grid-aligned EDF",
                         "saturate");
    }
    schedule.jobs.push_back(
        {job.id, static_cast<int>(machine_it - free_at.begin()), start});
    *machine_it = start + job.proc;
    done[chosen] = true;
    --remaining;
  }
  schedule.normalize();
  result.feasible = true;
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace calisched

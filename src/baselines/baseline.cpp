#include "baselines/baseline.hpp"

// The interface is header-only today; this TU anchors the vtable so the
// library has a stable home for IseBaseline's key function.

namespace calisched {}  // namespace calisched

#include "baselines/calibration_bounds.hpp"

#include <algorithm>
#include <vector>

#include "util/arith.hpp"

namespace calisched {

std::int64_t calibration_work_bound(const Instance& instance) {
  if (instance.empty()) return 0;
  return ceil_div(instance.total_work(), instance.T);
}

std::int64_t calibration_windowed_bound(const Instance& instance) {
  if (instance.empty()) return 0;
  struct Window {
    Time a, b;
    std::int64_t value;
  };
  std::vector<Time> releases, deadlines;
  for (const Job& job : instance.jobs) {
    releases.push_back(job.release);
    deadlines.push_back(job.deadline);
  }
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()), releases.end());
  std::sort(deadlines.begin(), deadlines.end());
  deadlines.erase(std::unique(deadlines.begin(), deadlines.end()),
                  deadlines.end());

  std::vector<Window> windows;
  for (const Time a : releases) {
    for (const Time b : deadlines) {
      if (b <= a) continue;
      Time work = 0;
      for (const Job& job : instance.jobs) {
        if (a <= job.release && job.deadline <= b) work += job.proc;
      }
      if (work > 0) windows.push_back({a, b, ceil_div(work, instance.T)});
    }
  }
  if (windows.empty()) return 0;

  // Weighted interval scheduling where windows must be separated by >= T.
  std::sort(windows.begin(), windows.end(),
            [](const Window& x, const Window& y) { return x.b < y.b; });
  const std::size_t count = windows.size();
  std::vector<std::int64_t> best(count + 1, 0);
  for (std::size_t i = 0; i < count; ++i) {
    // Last window ending at or before windows[i].a - T.
    const Time cutoff = windows[i].a - instance.T;
    std::size_t lo = 0, hi = i;  // windows[0..i) sorted by b
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (windows[mid].b <= cutoff) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    best[i + 1] = std::max(best[i], best[lo] + windows[i].value);
  }
  return best[count];
}

std::int64_t calibration_lower_bound(const Instance& instance) {
  if (instance.empty()) return 0;
  return std::max<std::int64_t>(
      1, std::max(calibration_work_bound(instance),
                  calibration_windowed_bound(instance)));
}

}  // namespace calisched

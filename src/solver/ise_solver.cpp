#include "solver/ise_solver.hpp"

namespace calisched {

IseSolveResult solve_ise(const Instance& instance, const IseSolverOptions& options) {
  IseSolveResult result;
  const WindowSplit split = split_by_window(instance);
  result.long_job_count = split.long_jobs.size();
  result.short_job_count = split.short_jobs.size();

  // --- long-window pool ------------------------------------------------------
  LongWindowResult long_result =
      solve_long_window(split.long_jobs, options.long_window);
  result.long_telemetry = long_result.telemetry;
  if (!long_result.feasible) {
    result.error = "long-window pipeline: " + long_result.error;
    return result;
  }

  // --- short-window pool -----------------------------------------------------
  const GreedyEdfMM default_mm;
  const MachineMinimizer& mm =
      options.mm ? static_cast<const MachineMinimizer&>(*options.mm)
                 : static_cast<const MachineMinimizer&>(default_mm);
  ShortWindowResult short_result =
      solve_short_window(split.short_jobs, mm, options.short_window);
  result.short_telemetry = short_result.telemetry;
  if (!short_result.feasible) {
    result.error = "short-window pipeline: " + short_result.error;
    return result;
  }

  // --- union on disjoint machines -------------------------------------------
  // An s-speed MM box leaves the short schedule in 1/s ticks at speed s;
  // lift the (1-speed) long schedule onto the same s-speed machine park —
  // jobs only get shorter, so feasibility is preserved.
  const std::int64_t s = short_result.schedule.speed;
  if (s != 1) {
    long_result.schedule.scale_denominator(s);
    long_result.schedule.scale_speed(s);
  }
  Schedule combined = Schedule::empty_like(instance, 0);
  combined.time_denominator = long_result.schedule.time_denominator;
  combined.speed = long_result.schedule.speed;
  combined.append_disjoint(long_result.schedule, 0);
  combined.append_disjoint(short_result.schedule, long_result.schedule.machines);
  combined.normalize();
  result.machines_allotted =
      long_result.schedule.machines + short_result.schedule.machines;
  result.total_calibrations = combined.num_calibrations();
  result.schedule = std::move(combined);
  result.feasible = true;
  return result;
}

}  // namespace calisched

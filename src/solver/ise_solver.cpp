#include "solver/ise_solver.hpp"

#include "trace/trace.hpp"

namespace calisched {

IseSolveResult solve_ise(const Instance& instance, const IseSolverOptions& options) {
  IseSolveResult result;
  // Top-level telemetry: stage totals here, the pipelines in child contexts.
  TraceContext local_trace("solve_ise");
  TraceContext* trace = options.trace ? options.trace : &local_trace;
  trace->set("jobs", static_cast<std::int64_t>(instance.size()));
  trace->set("machines", instance.machines);

  TraceSpan split_span(trace, "split");
  const WindowSplit split = split_by_window(instance);
  split_span.stop();
  result.long_job_count = split.long_jobs.size();
  result.short_job_count = split.short_jobs.size();
  trace->set("jobs.long", static_cast<std::int64_t>(split.long_jobs.size()));
  trace->set("jobs.short", static_cast<std::int64_t>(split.short_jobs.size()));

  // --- long-window pool ------------------------------------------------------
  LongWindowOptions long_options = options.long_window;
  long_options.limits = options.limits;
  long_options.trace = &trace->child("long_window");
  LongWindowResult long_result =
      solve_long_window(split.long_jobs, long_options);
  result.long_telemetry = long_result.telemetry;
  if (!long_result.feasible) {
    fail_result(result, long_result.status, long_result.error,
                "long-window pipeline");
    return result;
  }

  // --- short-window pool -----------------------------------------------------
  const GreedyEdfMM default_mm;
  const MachineMinimizer& mm =
      options.mm ? static_cast<const MachineMinimizer&>(*options.mm)
                 : static_cast<const MachineMinimizer&>(default_mm);
  IntervalOptions short_options = options.short_window;
  short_options.limits = options.limits;
  short_options.trace = &trace->child("short_window");
  ShortWindowResult short_result =
      solve_short_window(split.short_jobs, mm, short_options);
  result.short_telemetry = short_result.telemetry;
  if (!short_result.feasible) {
    fail_result(result, short_result.status, short_result.error,
                "short-window pipeline");
    return result;
  }

  // --- union on disjoint machines -------------------------------------------
  // An s-speed MM box leaves the short schedule in 1/s ticks at speed s;
  // lift the (1-speed) long schedule onto the same s-speed machine park —
  // jobs only get shorter, so feasibility is preserved.
  TraceSpan combine_span(trace, "combine");
  const std::int64_t s = short_result.schedule.speed;
  if (s != 1) {
    long_result.schedule.scale_denominator(s);
    long_result.schedule.scale_speed(s);
  }
  Schedule combined = Schedule::empty_like(instance, 0);
  combined.time_denominator = long_result.schedule.time_denominator;
  combined.speed = long_result.schedule.speed;
  combined.append_disjoint(long_result.schedule, 0);
  combined.append_disjoint(short_result.schedule, long_result.schedule.machines);
  combined.normalize();
  combine_span.stop();
  result.machines_allotted =
      long_result.schedule.machines + short_result.schedule.machines;
  result.total_calibrations = combined.num_calibrations();
  trace->set("machines.allotted", result.machines_allotted);
  trace->set("calibrations.total",
             static_cast<std::int64_t>(result.total_calibrations));
  trace->set("speed", combined.speed);
  result.schedule = std::move(combined);
  result.feasible = true;
  return result;
}

}  // namespace calisched

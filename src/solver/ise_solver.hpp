// The top-level ISE algorithm (Theorem 1).
//
// Split the jobs by Definition 1 into long- and short-window subsets;
// run the Section-3 LP pipeline on the long jobs and the Section-4
// MM-black-box pipeline on the short jobs, on disjoint machine pools;
// the union is the final schedule. With an s-speed alpha-approximate MM
// box this is an O(alpha)-machine s-speed O(alpha)-approximation.
#pragma once

#include <memory>
#include <string>

#include "longwin/long_pipeline.hpp"
#include "shortwin/short_pipeline.hpp"

namespace calisched {

struct IseSolverOptions {
  LongWindowOptions long_window;
  IntervalOptions short_window;
  /// Deadline + cancellation for the whole solve; copied over both
  /// pipelines' limits before dispatch.
  RunLimits limits;
  /// MM black box for the short-window pipeline; GreedyEdfMM when null.
  std::shared_ptr<const MachineMinimizer> mm;
  /// Optional telemetry sink for the whole solve: split/combine spans and
  /// top-level totals at this level, with the pipelines reporting into
  /// "long_window" / "short_window" child contexts (any trace already set
  /// on the pipeline options is overridden by those children). Not owned.
  TraceContext* trace = nullptr;
};

struct IseSolveResult {
  bool feasible = false;
  /// Structured outcome, propagated from whichever pipeline failed.
  SolveStatus status = SolveStatus::kOk;
  Schedule schedule;
  std::string error;

  std::size_t long_job_count = 0;
  std::size_t short_job_count = 0;
  LongWindowTelemetry long_telemetry;
  ShortWindowTelemetry short_telemetry;

  std::size_t total_calibrations = 0;
  int machines_allotted = 0;  ///< long pool + short pool
};

[[nodiscard]] IseSolveResult solve_ise(const Instance& instance,
                                       const IseSolverOptions& options = {});

}  // namespace calisched

#include "solver/mm_via_ise.hpp"

#include <algorithm>
#include <map>

#include "solver/ise_solver.hpp"

namespace calisched {

MmViaIseResult mm_via_ise(const Instance& mm_instance) {
  MmViaIseResult result;
  if (mm_instance.empty()) {
    result.feasible = true;
    return result;
  }
  Instance ise = mm_instance;
  // T = span makes every window fit inside one calibration length; clamp
  // to the model's minimum T >= 2 and to max p_j (p_j <= T must hold —
  // automatic, since every window contains its job's processing time).
  ise.T = std::max<Time>(2, ise.max_deadline() - ise.min_release());
  ise.machines = static_cast<int>(ise.size());  // never binding

  IseSolverOptions options;
  // Empty calendars are free machines we should not pay for.
  options.long_window.prune_empty_calibrations = true;
  options.short_window.trim_unused_calibrations = true;
  const IseSolveResult solved = solve_ise(ise, options);
  if (!solved.feasible) {
    result.status = solved.status;
    result.error = solved.error;
    return result;
  }
  result.calibrations = solved.total_calibrations;

  // One MM machine per calibration; jobs keep their start times. The ISE
  // solve used speed-1 boxes, so ticks are time units.
  std::map<std::pair<int, Time>, int> machine_of_calibration;
  for (const Calibration& cal : solved.schedule.calibrations) {
    const int id = static_cast<int>(machine_of_calibration.size());
    machine_of_calibration[{cal.machine, cal.start}] = id;
  }
  result.schedule.machines = static_cast<int>(machine_of_calibration.size());
  const Time cal_len = solved.schedule.calibration_ticks();
  for (const ScheduledJob& sj : solved.schedule.jobs) {
    const Job& job = mm_instance.job_by_id(sj.job);
    // Locate the covering calibration (exists: the schedule verified).
    int machine = -1;
    for (const Calibration& cal : solved.schedule.calibrations) {
      if (cal.machine == sj.machine && cal.start <= sj.start &&
          sj.start + job.proc <= cal.start + cal_len) {
        machine = machine_of_calibration[{cal.machine, cal.start}];
        break;
      }
    }
    if (machine < 0) {
      fail_result(result, SolveStatus::kNumericalFailure,
                  "job outside every calibration (solver bug)");
      return result;
    }
    result.schedule.jobs.push_back({job.id, machine, sj.start});
  }
  result.feasible = true;
  return result;
}

}  // namespace calisched

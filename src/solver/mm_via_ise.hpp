// The Section-1 reduction: machine minimization is a special case of ISE.
//
// "Given an instance to MM, construct an ISE instance by setting
//  T = max_j d_j - min_j r_j."  With that T every job's window fits inside
// one calibration length, so each calibration can stand in for one
// machine: an ISE solution with C calibrations yields an MM solution with
// C machines (jobs inside one calibration never overlap). The paper uses
// this direction for lower bounds (ISE inherits MM's hardness); here it is
// executable, both as a demonstration and as a cross-check that the ISE
// solver specializes correctly.
#pragma once

#include <cstddef>

#include "runtime/status.hpp"
#include "verify/verify.hpp"

namespace calisched {

struct MmViaIseResult {
  bool feasible = false;
  /// Structured outcome, propagated from the underlying ISE solve.
  SolveStatus status = SolveStatus::kOk;
  MMSchedule schedule;          ///< one machine per ISE calibration
  std::size_t calibrations = 0; ///< of the underlying ISE solve (= machines)
  std::string error;
};

/// `mm_instance.T` is ignored (the reduction chooses its own); machine
/// count is taken as "enough" (n) since the objective being minimized is
/// calibrations = machines.
[[nodiscard]] MmViaIseResult mm_via_ise(const Instance& mm_instance);

}  // namespace calisched

// Online-arrival scheduling: event-driven simulation of an arrival stream
// against a pluggable scheduler whose contract is append-only.
//
// Every algorithm below this layer is offline: the full job set is known
// before the first calibration is placed. Here jobs become known only at
// their arrival time, and the scheduler may *extend* its commitment — open
// calibrations and assign jobs at times >= the current decision time — but
// never rewrite the past. The simulator enforces exactly that contract
// (time monotonicity, no retroactive calibration or assignment, no job
// scheduled before it arrived, each job assigned at most once) and the
// final committed schedule is re-checked by the type-aware verifier, so a
// scheduler cannot launder an infeasible schedule through the event loop.
//
// The event model is deliberately small:
//   * arrive(t, jobs)  — the stream reveals jobs at time t; the scheduler
//     is shown all jobs sharing one arrival time in a single call;
//   * alarms           — a decision may request a wakeup at a strictly
//     later time; the simulator fires it (with no arrivals) before
//     delivering any event at or after that time. Lazy heuristics use this
//     to defer calibration opening to the latest feasible start.
//
// Each advancement produces a ScheduleDelta — the calibrations and
// assignments committed since the previous advancement — which is what the
// service's `subscribe` protocol streams to clients and what the CLI
// `replay` mode prints. Deltas are a partition of the final schedule:
// replay(deltas) == committed schedule, byte for byte.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "verify/verify.hpp"

namespace calisched {

/// One trace event: job `job` becomes known at time `time`. Traces built
/// from an Instance use the release time as the arrival time, which is the
/// classic online-ISE assumption; a hand-built trace may announce a job
/// earlier than its release (time < job.release is allowed, the reverse is
/// not — a job cannot arrive after it could already have been running).
struct ArrivalEvent {
  Time time = 0;
  Job job;
};

/// A timestamped arrival trace over a machine park, replayable through
/// OnlineSimulation. Events are kept sorted by (time, job.id).
struct ArrivalTrace {
  int machines = 1;
  Time T = 2;
  /// Calibration-type table; empty means the unit model of length T.
  CalibrationModel cal;
  std::vector<ArrivalEvent> events;

  /// The offline view of the trace (what the clairvoyant solvers see).
  [[nodiscard]] Instance to_instance() const;

  /// Builds the canonical trace of an instance: every job arrives at its
  /// release time, events sorted by (time, id).
  [[nodiscard]] static ArrivalTrace from_instance(const Instance& instance);
};

/// The scheduler's reply to one event: commitments effective immediately,
/// plus an optional alarm. All starts must be >= the event time.
struct OnlineDecision {
  std::vector<Calibration> calibrations;
  std::vector<ScheduledJob> jobs;
  /// Request a wakeup (on_event with no arrivals) at this time; must be
  /// strictly greater than the event time. -1 requests none. A newer
  /// decision's wakeup replaces the previous one.
  Time wakeup = -1;
};

/// Interface every online heuristic implements. One instance serves one
/// simulation run; begin() resets all state.
class OnlineScheduler {
 public:
  virtual ~OnlineScheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Starts a run on `machines` machines with calibration length `T` and
  /// type table `cal` (empty = unit model).
  virtual void begin(int machines, Time T, const CalibrationModel& cal) = 0;

  /// Called at each advancement: arrivals revealed at `now` (empty for an
  /// alarm wakeup). Decisions take effect at `now`; the simulator rejects
  /// any start before it.
  virtual OnlineDecision on_event(Time now, const std::vector<Job>& arrivals) = 0;
};

/// Scheduler factory; the single source of truth for online algorithm
/// names ("online-edf"). Returns nullptr for an unknown name.
[[nodiscard]] std::unique_ptr<OnlineScheduler> make_online_scheduler(
    const std::string& name);

/// Commitments made by one advancement of the simulation: everything the
/// scheduler committed in (previous advancement time, time].
struct ScheduleDelta {
  Time time = 0;
  std::vector<Calibration> calibrations;
  std::vector<ScheduledJob> jobs;
};

/// Final outcome of a simulation run.
struct OnlineResult {
  Schedule schedule;        ///< the committed schedule (normalized)
  bool feasible = false;    ///< all jobs placed and the verifier accepted
  std::string error;        ///< first contract/feasibility violation
  std::vector<ScheduleDelta> deltas;  ///< the full delta stream, in order
  std::size_t events = 0;   ///< arrive() advancements processed
  std::size_t alarms = 0;   ///< alarm wakeups fired
};

/// Incremental event-driven simulator. Drives one OnlineScheduler through
/// an arrival stream, enforcing the append-only contract at every step.
/// Used in two modes: simulate_trace() replays a whole trace, and the
/// service's `subscribe` sessions call arrive()/finish() one request at a
/// time, streaming each returned delta to the client.
class OnlineSimulation {
 public:
  /// Takes ownership of the scheduler and calls begin() on it.
  OnlineSimulation(std::unique_ptr<OnlineScheduler> scheduler, int machines,
                   Time T, CalibrationModel cal);

  /// Advances the clock to `time` — firing any due alarms on the way —
  /// and delivers `jobs` as arrivals at `time`. On success appends the
  /// combined commitments to the internal delta stream and, when `delta`
  /// is non-null, copies them there. Returns false (and sets *error) on a
  /// contract violation: time regression, malformed job, duplicate id, or
  /// a scheduler decision that starts anything before its decision time.
  /// After a failure the simulation is poisoned and every later call
  /// fails with the same error.
  bool arrive(Time time, const std::vector<Job>& jobs, ScheduleDelta* delta,
              std::string* error);

  /// Fires all outstanding alarms, then closes the run: checks every
  /// arrived job was placed, normalizes the schedule, and re-verifies it
  /// with the type-aware verifier. Idempotent once called.
  OnlineResult finish();

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] bool failed() const noexcept { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const Schedule& committed() const noexcept { return schedule_; }
  [[nodiscard]] std::size_t arrived_jobs() const noexcept { return jobs_.size(); }

 private:
  /// Fires alarms due strictly before `time`; accumulates into `delta`.
  bool advance_to(Time time, ScheduleDelta& delta);
  /// Validates and commits one decision made at time `at`.
  bool apply(Time at, OnlineDecision decision, ScheduleDelta& delta);
  bool fail(const std::string& message);

  std::unique_ptr<OnlineScheduler> scheduler_;
  Schedule schedule_;
  std::vector<Job> jobs_;           ///< every arrived job, arrival order
  std::vector<bool> scheduled_;     ///< parallel to jobs_
  std::unordered_map<JobId, std::size_t> index_of_;  ///< id -> jobs_ index
  std::vector<ScheduleDelta> deltas_;
  Time now_ = 0;
  Time wakeup_ = -1;
  std::string error_;
  bool started_ = false;            ///< any advancement happened yet
  bool finished_ = false;
  std::size_t events_ = 0;
  std::size_t alarms_ = 0;
};

/// Replays a whole trace: one arrive() per distinct arrival time, then
/// finish(). The scheduler is created fresh via the factory.
[[nodiscard]] OnlineResult simulate_trace(const std::string& scheduler_name,
                                          const ArrivalTrace& trace);

/// Same, with a caller-supplied scheduler (ownership transferred).
[[nodiscard]] OnlineResult simulate_trace(
    std::unique_ptr<OnlineScheduler> scheduler, const ArrivalTrace& trace);

}  // namespace calisched

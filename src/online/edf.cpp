// The "online-edf" heuristic: lazy calibration opening at the latest
// feasible start, EDF dispatch inside open calibrations, and
// doubling-style escalation of how many calibrations one forced opening
// may create.
//
// The structure transplants the source paper's two offline ideas into the
// arrival stream. Lazy binding (Lemma 3 / the lazy-binding algorithm)
// becomes an alarm at min_j (d_j - p_j - delay): a pending job forces a
// calibration only when waiting any longer would make every type
// infeasible for it, which is the online analogue of snapping calibration
// starts to latest-feasible grid points. Latest-starting-deadlines
// dispatch becomes plain EDF over the arrived-but-unscheduled set, packed
// into the availability windows of already-committed calibrations.
// Escalation follows Im-Moseley-Pruhs-Stein's online machine-minimization
// doubling: when one forced opening cannot absorb the urgent backlog the
// budget of simultaneous openings doubles (1, 2, 4, ... capped at m), so
// a burst-heavy adversary raises the opening rate geometrically instead
// of one calibration per alarm.
//
// Everything is deterministic — no randomness, no wall clock — so a replay
// of the same trace produces a byte-identical schedule, which the
// determinism property tests and the service's subscribe protocol rely on.
#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "online/online.hpp"

namespace calisched {

namespace {

/// One committed calibration with its remaining capacity. `next_free` is
/// the earliest tick a new job could start inside it (monotone as jobs
/// are packed front to back).
struct OpenCalibration {
  Calibration cal;
  Time next_free = 0;
  Time avail_end = 0;
};

class EdfScheduler final : public OnlineScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "online-edf"; }

  void begin(int machines, Time T, const CalibrationModel& cal) override {
    machines_ = machines;
    model_ = cal.empty() ? CalibrationModel::unit(T) : cal;
    pending_.clear();
    open_.clear();
    occupied_until_.assign(static_cast<std::size_t>(machines), 0);
    round_ = 0;
  }

  OnlineDecision on_event(Time now, const std::vector<Job>& arrivals) override {
    for (const Job& job : arrivals) pending_.push_back(job);
    OnlineDecision decision;
    dispatch(now, decision);
    open_forced(now, decision);
    decision.wakeup = next_wakeup(now);
    return decision;
  }

 private:
  /// Latest time a calibration of type `k` could still open and finish
  /// `job` before its deadline.
  [[nodiscard]] Time open_deadline(const Job& job, std::size_t k) const {
    return job.deadline - job.proc - model_.types[k].activation_delay;
  }

  /// Latest time *any* type could still open for `job`; the job's alarm.
  /// Types too short for the job do not count. Returns min Time when no
  /// type fits (the job can never be served — finish() will report it).
  [[nodiscard]] Time latest_open(const Job& job) const {
    Time best = std::numeric_limits<Time>::min();
    for (std::size_t k = 0; k < model_.size(); ++k) {
      if (model_.types[k].length < job.proc) continue;
      best = std::max(best, open_deadline(job, k));
    }
    return best;
  }

  /// EDF: packs every pending job that fits into an already-open
  /// calibration. Fitting does not depend on waiting (next_free only
  /// moves when a job is packed), so dispatching eagerly loses nothing.
  void dispatch(Time now, OnlineDecision& decision) {
    std::sort(pending_.begin(), pending_.end(), [](const Job& a, const Job& b) {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a.id < b.id;
    });
    std::vector<Job> still_pending;
    for (const Job& job : pending_) {
      OpenCalibration* best = nullptr;
      Time best_start = 0;
      for (OpenCalibration& slot : open_) {
        const Time start = std::max({slot.next_free, now, job.release});
        if (start + job.proc > std::min(slot.avail_end, job.deadline)) continue;
        const bool better =
            best == nullptr || start < best_start ||
            (start == best_start &&
             (slot.cal.machine < best->cal.machine ||
              (slot.cal.machine == best->cal.machine &&
               slot.cal.start < best->cal.start)));
        if (better) {
          best = &slot;
          best_start = start;
        }
      }
      if (best == nullptr) {
        still_pending.push_back(job);
        continue;
      }
      decision.jobs.push_back(ScheduledJob{job.id, best->cal.machine, best_start});
      best->next_free = best_start + job.proc;
    }
    pending_ = std::move(still_pending);
  }

  /// Opens calibrations for jobs whose latest open time has arrived,
  /// re-dispatching after each opening. The per-event budget starts at
  /// 2^round and doubles while the urgent backlog outlasts it.
  void open_forced(Time now, OnlineDecision& decision) {
    std::size_t budget = std::min<std::size_t>(
        static_cast<std::size_t>(machines_), std::size_t{1} << round_);
    std::size_t opened = 0;
    for (;;) {
      // Most urgent job that can no longer wait: minimal latest-open
      // time, then EDF order.
      const Job* urgent = nullptr;
      Time urgent_open = 0;
      for (const Job& job : pending_) {
        const Time open_by = latest_open(job);
        if (open_by == std::numeric_limits<Time>::min()) continue;  // hopeless
        if (open_by > now) continue;  // can still wait
        const bool more_urgent =
            urgent == nullptr || open_by < urgent_open ||
            (open_by == urgent_open &&
             (job.deadline < urgent->deadline ||
              (job.deadline == urgent->deadline && job.id < urgent->id)));
        if (more_urgent) {
          urgent = &job;
          urgent_open = open_by;
        }
      }
      if (urgent == nullptr) return;
      if (opened >= budget) {
        if (budget >= static_cast<std::size_t>(machines_)) return;
        ++round_;  // escalate: the backlog outlasted this round's budget
        budget = std::min<std::size_t>(static_cast<std::size_t>(machines_),
                                       std::size_t{1} << round_);
      }
      // Cheapest type that can still serve the urgent job; ties prefer
      // the longer window (more room for EDF packing), then the lower
      // index. The opening start is `now` except for a pre-announced job
      // (release in the future), where the calibration is committed at
      // the earliest start whose availability window can still contain
      // the job — committing a future start is append-only too.
      int type = -1;
      Time type_start = 0;
      for (std::size_t k = 0; k < model_.size(); ++k) {
        const CalibrationType& candidate = model_.types[k];
        if (candidate.length < urgent->proc) continue;
        const Time start =
            std::max(now, urgent->release + urgent->proc - candidate.length -
                              candidate.activation_delay);
        if (start + candidate.activation_delay + urgent->proc > urgent->deadline)
          continue;
        if (type < 0) {
          type = static_cast<int>(k);
          type_start = start;
          continue;
        }
        const CalibrationType& chosen = model_.types[static_cast<std::size_t>(type)];
        if (candidate.cost < chosen.cost ||
            (candidate.cost == chosen.cost && candidate.length > chosen.length)) {
          type = static_cast<int>(k);
          type_start = start;
        }
      }
      // Lowest-numbered machine free at the opening start.
      int machine = -1;
      for (int m = 0; m < machines_; ++m) {
        if (type >= 0 &&
            occupied_until_[static_cast<std::size_t>(m)] <= type_start) {
          machine = m;
          break;
        }
      }
      if (type < 0 || machine < 0) {
        // The urgent job cannot be saved (deadline too close or no free
        // machine). Drop it from pending so the opening loop terminates;
        // finish() reports it as never scheduled.
        const JobId dead = urgent->id;
        pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                      [dead](const Job& job) {
                                        return job.id == dead;
                                      }),
                       pending_.end());
        continue;
      }
      const CalibrationType& info = model_.types[static_cast<std::size_t>(type)];
      const Calibration calibration{machine, type_start, type};
      decision.calibrations.push_back(calibration);
      open_.push_back(
          OpenCalibration{calibration, type_start + info.activation_delay,
                          type_start + info.activation_delay + info.length});
      occupied_until_[static_cast<std::size_t>(machine)] = type_start + info.span();
      ++opened;
      dispatch(now, decision);
    }
  }

  /// The next forced-opening time over jobs that can still wait.
  [[nodiscard]] Time next_wakeup(Time now) const {
    Time best = -1;
    for (const Job& job : pending_) {
      const Time open_by = latest_open(job);
      if (open_by <= now) continue;
      if (best < 0 || open_by < best) best = open_by;
    }
    return best;
  }

  int machines_ = 1;
  CalibrationModel model_;
  std::vector<Job> pending_;
  std::vector<OpenCalibration> open_;
  std::vector<Time> occupied_until_;
  std::size_t round_ = 0;
};

}  // namespace

std::unique_ptr<OnlineScheduler> make_online_scheduler(const std::string& name) {
  if (name == "online-edf") return std::make_unique<EdfScheduler>();
  return nullptr;
}

}  // namespace calisched

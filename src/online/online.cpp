#include "online/online.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace calisched {

namespace {

/// Total alarm firings one simulation will tolerate. A scheduler whose
/// alarms keep requesting new alarms without ever converging would
/// otherwise spin finish() forever; no sane heuristic fires more than a
/// handful of alarms per job.
constexpr std::size_t kMaxAlarms = 1u << 20;

}  // namespace

// ---------------------------------------------------------------------------
// ArrivalTrace

Instance ArrivalTrace::to_instance() const {
  Instance instance;
  instance.machines = machines;
  instance.T = T;
  instance.cal = cal;
  instance.jobs.reserve(events.size());
  for (const ArrivalEvent& event : events) instance.jobs.push_back(event.job);
  std::sort(instance.jobs.begin(), instance.jobs.end(),
            [](const Job& a, const Job& b) { return a.id < b.id; });
  return instance;
}

ArrivalTrace ArrivalTrace::from_instance(const Instance& instance) {
  ArrivalTrace trace;
  trace.machines = instance.machines;
  trace.T = instance.T;
  trace.cal = instance.cal;
  trace.events.reserve(instance.jobs.size());
  for (const Job& job : instance.jobs) {
    trace.events.push_back(ArrivalEvent{job.release, job});
  }
  std::sort(trace.events.begin(), trace.events.end(),
            [](const ArrivalEvent& a, const ArrivalEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.job.id < b.job.id;
            });
  return trace;
}

// ---------------------------------------------------------------------------
// OnlineSimulation

OnlineSimulation::OnlineSimulation(std::unique_ptr<OnlineScheduler> scheduler,
                                   int machines, Time T, CalibrationModel cal)
    : scheduler_(std::move(scheduler)) {
  assert(scheduler_ != nullptr);
  schedule_.machines = machines;
  schedule_.T = T;
  schedule_.cal = std::move(cal);
  schedule_.time_denominator = 1;
  schedule_.speed = 1;
  if (machines < 1) {
    fail("simulation requires at least one machine");
    return;
  }
  if (T < 1) {
    fail("simulation requires T >= 1");
    return;
  }
  if (const auto bad = schedule_.cal.validate()) {
    fail("bad calibration table: " + *bad);
    return;
  }
  scheduler_->begin(machines, T, schedule_.cal);
}

bool OnlineSimulation::fail(const std::string& message) {
  if (error_.empty()) error_ = message;
  return false;
}

bool OnlineSimulation::apply(Time at, OnlineDecision decision,
                             ScheduleDelta& delta) {
  const CalibrationModel model = schedule_.effective_model();
  for (const Calibration& calibration : decision.calibrations) {
    if (calibration.start < at) {
      return fail("append-only violation: calibration start " +
                  std::to_string(calibration.start) +
                  " before decision time " + std::to_string(at));
    }
    if (calibration.machine < 0 || calibration.machine >= schedule_.machines) {
      return fail("calibration on machine " +
                  std::to_string(calibration.machine) + " outside [0, " +
                  std::to_string(schedule_.machines) + ")");
    }
    if (calibration.type < 0 ||
        static_cast<std::size_t>(calibration.type) >= model.size()) {
      return fail("calibration type " + std::to_string(calibration.type) +
                  " outside the type table");
    }
    schedule_.calibrations.push_back(calibration);
    delta.calibrations.push_back(calibration);
  }
  for (const ScheduledJob& placed : decision.jobs) {
    if (placed.start < at) {
      return fail("append-only violation: job " + std::to_string(placed.job) +
                  " start " + std::to_string(placed.start) +
                  " before decision time " + std::to_string(at));
    }
    if (placed.machine < 0 || placed.machine >= schedule_.machines) {
      return fail("job " + std::to_string(placed.job) + " on machine " +
                  std::to_string(placed.machine) + " outside [0, " +
                  std::to_string(schedule_.machines) + ")");
    }
    const auto found = index_of_.find(placed.job);
    if (found == index_of_.end()) {
      return fail("job " + std::to_string(placed.job) +
                  " scheduled before it arrived");
    }
    const std::size_t index = found->second;
    if (scheduled_[index]) {
      return fail("job " + std::to_string(placed.job) + " scheduled twice");
    }
    scheduled_[index] = true;
    schedule_.jobs.push_back(placed);
    delta.jobs.push_back(placed);
  }
  if (decision.wakeup >= 0 && decision.wakeup <= at) {
    return fail("wakeup at " + std::to_string(decision.wakeup) +
                " not after decision time " + std::to_string(at));
  }
  wakeup_ = decision.wakeup;
  return true;
}

bool OnlineSimulation::advance_to(Time time, ScheduleDelta& delta) {
  while (wakeup_ >= 0 && wakeup_ < time) {
    if (++alarms_ > kMaxAlarms) {
      return fail("alarm budget exhausted (scheduler livelock?)");
    }
    now_ = wakeup_;
    wakeup_ = -1;
    if (!apply(now_, scheduler_->on_event(now_, {}), delta)) return false;
  }
  // A wakeup landing exactly on `time` is superseded by the event there:
  // the scheduler sees everything it asked to see and sets a fresh alarm.
  if (wakeup_ == time) wakeup_ = -1;
  now_ = time;
  return true;
}

bool OnlineSimulation::arrive(Time time, const std::vector<Job>& jobs,
                              ScheduleDelta* delta, std::string* error) {
  auto report = [&](bool ok) {
    if (!ok && error != nullptr) *error = error_;
    return ok;
  };
  if (failed()) return report(false);
  if (finished_) return report(fail("arrive() after finish()"));
  if (time < 0) return report(fail("negative arrival time"));
  if (started_ && time < now_) {
    return report(fail("time regression: arrival at " + std::to_string(time) +
                       " after clock reached " + std::to_string(now_)));
  }
  const Time max_length = schedule_.cal.empty()
                              ? schedule_.T
                              : schedule_.cal.max_length();
  for (const Job& job : jobs) {
    if (job.proc < 1) {
      return report(fail("job " + std::to_string(job.id) +
                         ": processing time must be >= 1"));
    }
    if (job.deadline < job.release + job.proc) {
      return report(fail("job " + std::to_string(job.id) +
                         ": window shorter than processing time"));
    }
    if (job.proc > max_length) {
      return report(fail("job " + std::to_string(job.id) +
                         ": processing time exceeds every calibration length"));
    }
    if (index_of_.count(job.id) != 0) {
      return report(fail("duplicate job id " + std::to_string(job.id)));
    }
  }
  for (std::size_t a = 0; a < jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < jobs.size(); ++b) {
      if (jobs[a].id == jobs[b].id) {
        return report(fail("duplicate job id " + std::to_string(jobs[a].id)));
      }
    }
  }
  ScheduleDelta combined;
  combined.time = time;
  if (!advance_to(time, combined)) return report(false);
  started_ = true;
  ++events_;
  for (const Job& job : jobs) {
    index_of_.emplace(job.id, jobs_.size());
    jobs_.push_back(job);
    scheduled_.push_back(false);
  }
  if (!apply(time, scheduler_->on_event(time, jobs), combined)) {
    return report(false);
  }
  if (delta != nullptr) *delta = combined;
  deltas_.push_back(std::move(combined));
  return report(true);
}

OnlineResult OnlineSimulation::finish() {
  if (!finished_ && !failed()) {
    // Drain the alarm chain: each firing may request a later one.
    while (wakeup_ >= 0 && !failed()) {
      ScheduleDelta tail;
      const Time at = wakeup_;
      tail.time = at;
      if (!advance_to(at + 1, tail)) break;
      if (!tail.calibrations.empty() || !tail.jobs.empty()) {
        deltas_.push_back(std::move(tail));
      }
    }
  }
  finished_ = true;
  OnlineResult result;
  result.events = events_;
  result.alarms = alarms_;
  result.deltas = deltas_;
  if (!failed()) {
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (!scheduled_[i]) {
        fail("job " + std::to_string(jobs_[i].id) +
             " never scheduled (online infeasible)");
        break;
      }
    }
  }
  schedule_.normalize();
  result.schedule = schedule_;
  if (failed()) {
    result.feasible = false;
    result.error = error_;
    return result;
  }
  Instance instance;
  instance.machines = schedule_.machines;
  instance.T = schedule_.T;
  instance.cal = schedule_.cal;
  instance.jobs = jobs_;
  std::sort(instance.jobs.begin(), instance.jobs.end(),
            [](const Job& a, const Job& b) { return a.id < b.id; });
  const VerifyResult verdict = verify_ise(instance, schedule_);
  if (!verdict.ok()) {
    fail("committed schedule rejected by verifier: " +
         verdict.violations.front().message);
    result.feasible = false;
    result.error = error_;
    return result;
  }
  result.feasible = true;
  return result;
}

// ---------------------------------------------------------------------------
// Trace replay

OnlineResult simulate_trace(std::unique_ptr<OnlineScheduler> scheduler,
                            const ArrivalTrace& trace) {
  OnlineSimulation simulation(std::move(scheduler), trace.machines, trace.T,
                              trace.cal);
  std::size_t i = 0;
  while (i < trace.events.size() && !simulation.failed()) {
    const Time at = trace.events[i].time;
    std::vector<Job> batch;
    while (i < trace.events.size() && trace.events[i].time == at) {
      batch.push_back(trace.events[i].job);
      ++i;
    }
    if (!simulation.arrive(at, batch, nullptr, nullptr)) break;
  }
  return simulation.finish();
}

OnlineResult simulate_trace(const std::string& scheduler_name,
                            const ArrivalTrace& trace) {
  std::unique_ptr<OnlineScheduler> scheduler =
      make_online_scheduler(scheduler_name);
  if (scheduler == nullptr) {
    OnlineResult result;
    result.error = "unknown online scheduler: " + scheduler_name;
    result.schedule = Schedule::empty_like(trace.to_instance(), trace.machines);
    return result;
  }
  return simulate_trace(std::move(scheduler), trace);
}

}  // namespace calisched

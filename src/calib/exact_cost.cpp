#include "calib/exact_cost.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "mm/mm.hpp"

namespace calisched {
namespace {

/// One candidate calibration: an integer start paired with a type index.
struct Candidate {
  Time start = 0;
  int type = 0;
};

/// One tentative calibration during the search.
struct SearchCalibration {
  Candidate where;
  Time load = 0;  ///< total processing assigned
  std::vector<const Job*> assigned;
};

class CostSearch {
 public:
  CostSearch(const Instance& instance, const CalibCostOptions& options)
      : instance_(instance),
        options_(options),
        model_(instance.effective_model()),
        poller_(options.limits, /*stride=*/1024) {
    // Candidate (start, type) pairs: a calibration is useful only if at
    // least one job can run inside its availability window. Starts are
    // integers by the usual left-shift-to-fixpoint argument (shifting
    // preserves each calibration's type).
    const Time hi = instance.max_deadline();  // exclusive
    for (int k = 0; k < static_cast<int>(model_.size()); ++k) {
      const Time lo = instance.min_release() - model_.types[idx(k)].span() + 1;
      for (Time t = lo; t < hi; ++t) {
        const Candidate candidate{t, k};
        if (std::any_of(
                instance.jobs.begin(), instance.jobs.end(),
                [&](const Job& job) { return job_fits(job, candidate); })) {
          grid_.push_back(candidate);
        }
      }
    }
    std::sort(grid_.begin(), grid_.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.start != b.start ? a.start < b.start : a.type < b.type;
              });
    jobs_by_deadline_.reserve(instance.size());
    for (const Job& job : instance.jobs) jobs_by_deadline_.push_back(&job);
    std::sort(jobs_by_deadline_.begin(), jobs_by_deadline_.end(),
              [](const Job* a, const Job* b) {
                return a->deadline != b->deadline ? a->deadline < b->deadline
                                                  : a->id < b->id;
              });
  }

  CalibCostResult run() {
    CalibCostResult result;
    if (instance_.empty()) {
      result.solved = true;
      result.feasible = true;
      result.schedule = Schedule::empty_like(instance_, instance_.machines);
      return result;
    }
    const std::int64_t min_cost = model_.min_cost();
    for (int k = 1; k <= options_.max_calibrations; ++k) {
      // Even k copies of the cheapest type cannot beat the best found.
      if (static_cast<std::int64_t>(k) * min_cost >= best_cost_) break;
      calibrations_.clear();
      choose_times(k, 0, 0);
      if (budget_hit_) break;
    }
    result.nodes = nodes_;
    if (budget_hit_) {
      if (poller_.status() != SolveStatus::kOk) {
        result.status = poller_.status();
      } else if (sub_status_ != SolveStatus::kOk) {
        result.status = sub_status_;  // a packing sub-search was stopped
      } else {
        result.status = SolveStatus::kLimitExceeded;
      }
      // A best-so-far is still reported (feasible but unproven optimal).
      if (best_cost_ < std::numeric_limits<std::int64_t>::max()) {
        result.feasible = true;
        result.total_cost = best_cost_;
        result.schedule = best_schedule_;
      }
      return result;  // solved = false
    }
    result.solved = true;
    if (best_cost_ < std::numeric_limits<std::int64_t>::max()) {
      result.feasible = true;
      result.total_cost = best_cost_;
      result.schedule = best_schedule_;
    } else {
      result.status = SolveStatus::kInfeasible;
    }
    return result;
  }

 private:
  static std::size_t idx(int k) { return static_cast<std::size_t>(k); }

  [[nodiscard]] const CalibrationType& type_of(const Candidate& c) const {
    return model_.types[idx(c.type)];
  }

  /// ISE fit: the job runs somewhere inside the availability window and its
  /// own [release, deadline) window.
  [[nodiscard]] bool job_fits(const Job& job, const Candidate& c) const {
    const CalibrationType& type = type_of(c);
    const Time avail_start = c.start + type.activation_delay;
    const Time avail_end = c.start + type.span();
    const Time earliest = std::max(avail_start, job.release);
    const Time latest = std::min(avail_end, job.deadline);
    return earliest + job.proc <= latest;
  }

  /// Picks `remaining` more candidates, nondecreasing in grid order,
  /// keeping the occupancy overlap within the machine count and the cost
  /// bound below the best complete solution found so far.
  void choose_times(int remaining, std::size_t from, std::int64_t cost) {
    if (++nodes_ > options_.node_budget ||
        poller_.poll() != SolveStatus::kOk) {
      budget_hit_ = true;  // either way: abandon the whole search
      return;
    }
    if (cost + static_cast<std::int64_t>(remaining) * model_.min_cost() >=
        best_cost_) {
      return;  // cannot beat the incumbent
    }
    if (remaining == 0) {
      if (pack_jobs(0)) {
        best_cost_ = cost;
        best_schedule_ = build_schedule();
      }
      // A successful pack leaves its assignments in place — reset before
      // the enclosing loop reuses these calibration slots.
      for (SearchCalibration& c : calibrations_) {
        c.assigned.clear();
        c.load = 0;
      }
      // Keep searching: a different same-size selection may be cheaper.
      return;
    }
    for (std::size_t g = from; g < grid_.size(); ++g) {
      const Candidate& candidate = grid_[g];
      // Occupancy overlap at the new interval's left endpoint (interval
      // max-overlap is attained at a left endpoint, so checking each
      // insertion point bounds the whole selection).
      int overlap = 1;
      for (const SearchCalibration& c : calibrations_) {
        if (c.where.start + type_of(c.where).span() > candidate.start) {
          ++overlap;
        }
      }
      if (overlap > instance_.machines) continue;
      calibrations_.push_back({candidate, 0, {}});
      choose_times(remaining - 1, g, cost + type_of(candidate).cost);
      calibrations_.pop_back();
      if (budget_hit_) return;
    }
  }

  /// Assigns jobs_by_deadline_[index..] to the chosen calibrations.
  bool pack_jobs(std::size_t index) {
    if (++nodes_ > options_.node_budget ||
        poller_.poll() != SolveStatus::kOk) {
      budget_hit_ = true;  // either way: abandon the whole search
      return false;
    }
    if (index == jobs_by_deadline_.size()) return true;
    const Job& job = *jobs_by_deadline_[index];
    const Candidate* last_tried = nullptr;
    for (SearchCalibration& c : calibrations_) {
      // Symmetry break: identical empty twins behave identically.
      if (last_tried != nullptr && c.assigned.empty() &&
          c.where.start == last_tried->start &&
          c.where.type == last_tried->type) {
        continue;
      }
      if (!job_fits(job, c.where)) continue;
      if (c.load + job.proc > type_of(c.where).length) continue;
      c.assigned.push_back(&job);
      c.load += job.proc;
      if (calibration_packable(c) && pack_jobs(index + 1)) return true;
      c.assigned.pop_back();
      c.load -= job.proc;
      if (budget_hit_) return false;
      if (c.assigned.empty()) last_tried = &c.where;
    }
    return false;
  }

  /// Exact single-machine feasibility of one calibration's job set with
  /// windows clipped to the availability window.
  [[nodiscard]] Instance clip_to(const SearchCalibration& c) const {
    const CalibrationType& type = type_of(c.where);
    const Time avail_start = c.where.start + type.activation_delay;
    const Time avail_end = c.where.start + type.span();
    Instance clipped;
    clipped.machines = 1;
    clipped.T = std::max<Time>(2, type.length);
    for (const Job* job : c.assigned) {
      Job clip = *job;
      clip.release = std::max(job->release, avail_start);
      clip.deadline = std::min(job->deadline, avail_end);
      clipped.jobs.push_back(clip);
    }
    return clipped;
  }

  /// A *stopped* packing sub-search must abandon the whole search with the
  /// stop reason — "not packable" would turn a budget artifact into a
  /// pruned (possibly optimal) branch.
  [[nodiscard]] bool calibration_packable(const SearchCalibration& c) {
    const MMFeasibility packed =
        exact_mm_feasibility(clip_to(c), 1, ExactEngine::kBranchBound,
                             /*node_budget=*/100'000, options_.limits);
    if (packed.status != SolveStatus::kOk) {
      budget_hit_ = true;
      sub_status_ = packed.status;
      return false;
    }
    return packed.feasible;
  }

  /// Rebuilds the full schedule from the final packing: greedy interval
  /// coloring on occupancy spans, then the per-calibration 1-machine
  /// schedule.
  [[nodiscard]] Schedule build_schedule() const {
    Schedule schedule = Schedule::empty_like(instance_, instance_.machines);
    std::vector<const SearchCalibration*> order;
    for (const SearchCalibration& c : calibrations_) order.push_back(&c);
    std::sort(order.begin(), order.end(),
              [](const SearchCalibration* a, const SearchCalibration* b) {
                return a->where.start < b->where.start;
              });
    std::vector<Time> machine_free(static_cast<std::size_t>(instance_.machines),
                                   std::numeric_limits<Time>::min());
    for (const SearchCalibration* c : order) {
      int machine = -1;
      for (std::size_t i = 0; i < machine_free.size(); ++i) {
        if (machine_free[i] <= c->where.start) {
          machine = static_cast<int>(i);
          break;
        }
      }
      assert(machine >= 0 && "coloring fits: overlap checked in choose_times");
      machine_free[static_cast<std::size_t>(machine)] =
          c->where.start + type_of(c->where).span();
      schedule.calibrations.push_back({machine, c->where.start, c->where.type});

      const MMFeasibility packed = exact_mm_feasibility(
          clip_to(*c), 1, ExactEngine::kBranchBound, /*node_budget=*/100'000);
      assert(packed.feasible && "re-pack of a packable calibration");
      for (const ScheduledJob& sj : packed.schedule.jobs) {
        schedule.jobs.push_back({sj.job, machine, sj.start});
      }
    }
    schedule.normalize();
    return schedule;
  }

  const Instance& instance_;
  CalibCostOptions options_;
  CalibrationModel model_;
  LimitPoller poller_;
  std::vector<Candidate> grid_;
  std::vector<const Job*> jobs_by_deadline_;
  std::vector<SearchCalibration> calibrations_;
  Schedule best_schedule_;
  std::int64_t best_cost_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t nodes_ = 0;
  bool budget_hit_ = false;
  SolveStatus sub_status_ = SolveStatus::kOk;
};

}  // namespace

CalibCostResult solve_exact_calib_cost(const Instance& instance,
                                       const CalibCostOptions& options) {
  CostSearch search(instance, options);
  return search.run();
}

}  // namespace calisched

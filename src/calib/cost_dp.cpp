#include "calib/cost_dp.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "mm/mm.hpp"

namespace calisched {
namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
constexpr int kMaxJobs = 20;

/// The winning transition out of a memoized state, for reconstruction.
struct Entry {
  std::int64_t cost = kInf;
  Time start = 0;
  int type = 0;
  std::uint32_t subset = 0;
};

class CostDp {
 public:
  CostDp(const Instance& instance, const CostDpOptions& options)
      : instance_(instance),
        options_(options),
        model_(instance.effective_model()),
        poller_(options.limits, /*stride=*/256) {
    for (const Job& job : instance.jobs) jobs_.push_back(&job);
    std::sort(jobs_.begin(), jobs_.end(),
              [](const Job* a, const Job* b) { return a->id < b->id; });
    // Useful integer starts, pooled across types (a start is kept when any
    // job fits any type there; per-type fit is re-checked at use).
    const Time hi = instance.max_deadline();
    std::vector<Time> starts;
    for (int k = 0; k < static_cast<int>(model_.size()); ++k) {
      const Time lo =
          instance.min_release() - model_.types[idx(k)].span() + 1;
      for (Time t = lo; t < hi; ++t) {
        for (const Job* job : jobs_) {
          if (fits(*job, t, k)) {
            starts.push_back(t);
            break;
          }
        }
      }
    }
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
    starts_ = std::move(starts);
  }

  CostDpResult run() {
    CostDpResult result;
    if (instance_.machines != 1) {
      result.status = SolveStatus::kInfeasible;
      result.solved = true;
      return result;
    }
    if (instance_.empty()) {
      result.solved = true;
      result.feasible = true;
      result.schedule = Schedule::empty_like(instance_, 1);
      return result;
    }
    if (jobs_.size() > kMaxJobs) {
      result.status = SolveStatus::kLimitExceeded;
      return result;  // solved = false: mask-indexed DP caps out
    }
    const std::int64_t cost =
        best(0, std::numeric_limits<Time>::min());
    result.nodes = nodes_;
    if (budget_hit_) {
      if (poller_.status() != SolveStatus::kOk) {
        result.status = poller_.status();
      } else if (sub_status_ != SolveStatus::kOk) {
        result.status = sub_status_;  // a packing sub-search was stopped
      } else {
        result.status = SolveStatus::kLimitExceeded;
      }
      return result;  // solved = false
    }
    result.solved = true;
    if (cost == kInf) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    result.feasible = true;
    result.total_cost = cost;
    result.schedule = reconstruct();
    return result;
  }

 private:
  static std::size_t idx(int k) { return static_cast<std::size_t>(k); }

  [[nodiscard]] std::uint32_t full_mask() const {
    return (std::uint32_t{1} << jobs_.size()) - 1;
  }

  /// ISE fit of one job inside a type-k calibration starting at t.
  [[nodiscard]] bool fits(const Job& job, Time t, int k) const {
    const CalibrationType& type = model_.types[idx(k)];
    const Time earliest = std::max(t + type.activation_delay, job.release);
    const Time latest = std::min(t + type.span(), job.deadline);
    return earliest + job.proc <= latest;
  }

  /// Can the earliest-deadline unscheduled job still complete when the
  /// machine frees up at `free`? Cheap dead-state cut: job j fits some
  /// future calibration iff some type k has p <= L_k and
  /// max(free + delta_k, r_j) + p <= d_j (start the calibration at
  /// max(free, r_j - delta_k); the window then covers the run).
  [[nodiscard]] bool urgent_job_alive(std::uint32_t mask, Time free) const {
    const Job* urgent = nullptr;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (mask & (std::uint32_t{1} << j)) continue;
      if (urgent == nullptr || jobs_[j]->deadline < urgent->deadline) {
        urgent = jobs_[j];
      }
    }
    if (urgent == nullptr) return true;
    for (const CalibrationType& type : model_.types) {
      if (urgent->proc > type.length) continue;
      const Time start =
          std::max(free == std::numeric_limits<Time>::min()
                       ? urgent->release
                       : free + type.activation_delay,
                   urgent->release);
      if (start + urgent->proc <= urgent->deadline) return true;
    }
    return false;
  }

  /// Minimum cost to schedule the jobs outside `mask` on a machine that
  /// frees up at `free`. kInf when impossible (or the budget fired).
  std::int64_t best(std::uint32_t mask, Time free) {
    if (mask == full_mask()) return 0;
    const auto key = std::make_pair(mask, free);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second.cost;
    }
    if (!urgent_job_alive(mask, free)) {
      memo_.emplace(key, Entry{});
      return kInf;
    }
    Entry entry;
    for (const Time s : starts_) {
      if (s < free) continue;
      for (int k = 0; k < static_cast<int>(model_.size()); ++k) {
        const CalibrationType& type = model_.types[idx(k)];
        std::uint32_t eligible = 0;
        for (std::size_t j = 0; j < jobs_.size(); ++j) {
          const std::uint32_t bit = std::uint32_t{1} << j;
          if ((mask & bit) == 0 && fits(*jobs_[j], s, k)) eligible |= bit;
        }
        if (eligible == 0) continue;
        // All nonempty subsets of the eligible jobs.
        for (std::uint32_t sub = eligible; sub != 0;
             sub = (sub - 1) & eligible) {
          if (++nodes_ > options_.node_budget ||
              poller_.poll() != SolveStatus::kOk) {
            budget_hit_ = true;
            return kInf;  // unmemoized: the value is not trustworthy
          }
          if (subset_load(sub) > type.length) continue;
          if (!packable(sub, s, k)) continue;
          const std::int64_t rest = best(mask | sub, s + type.span());
          if (budget_hit_) return kInf;
          if (rest == kInf) continue;
          const std::int64_t total = type.cost + rest;
          if (total < entry.cost) {
            entry = Entry{total, s, k, sub};
          }
        }
      }
    }
    memo_.emplace(key, entry);
    return entry.cost;
  }

  [[nodiscard]] Time subset_load(std::uint32_t sub) const {
    Time load = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (sub & (std::uint32_t{1} << j)) load += jobs_[j]->proc;
    }
    return load;
  }

  /// Jobs in `sub` with windows clipped to the availability window of a
  /// type-k calibration starting at s.
  [[nodiscard]] Instance clipped(std::uint32_t sub, Time s, int k) const {
    const CalibrationType& type = model_.types[idx(k)];
    const Time avail_start = s + type.activation_delay;
    const Time avail_end = s + type.span();
    Instance clip;
    clip.machines = 1;
    clip.T = std::max<Time>(2, type.length);
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if ((sub & (std::uint32_t{1} << j)) == 0) continue;
      Job job = *jobs_[j];
      job.release = std::max(job.release, avail_start);
      job.deadline = std::min(job.deadline, avail_end);
      clip.jobs.push_back(job);
    }
    return clip;
  }

  /// A *stopped* packing sub-search must abandon the whole DP with the
  /// stop reason — "not packable" would turn a budget artifact into a
  /// pruned (possibly optimal) transition.
  [[nodiscard]] bool packable(std::uint32_t sub, Time s, int k) {
    const MMFeasibility packed =
        exact_mm_feasibility(clipped(sub, s, k), 1, ExactEngine::kBranchBound,
                             /*node_budget=*/100'000, options_.limits);
    if (packed.status != SolveStatus::kOk) {
      budget_hit_ = true;
      sub_status_ = packed.status;
      return false;
    }
    return packed.feasible;
  }

  /// Replays the memoized winning transitions into a schedule.
  [[nodiscard]] Schedule reconstruct() const {
    Schedule schedule = Schedule::empty_like(instance_, 1);
    std::uint32_t mask = 0;
    Time free = std::numeric_limits<Time>::min();
    while (mask != full_mask()) {
      const auto it = memo_.find(std::make_pair(mask, free));
      assert(it != memo_.end() && it->second.cost != kInf);
      const Entry& entry = it->second;
      schedule.calibrations.push_back({0, entry.start, entry.type});
      const MMFeasibility packed = exact_mm_feasibility(
          clipped(entry.subset, entry.start, entry.type), 1,
          ExactEngine::kBranchBound, /*node_budget=*/100'000);
      assert(packed.feasible && "packability was checked during the DP");
      for (const ScheduledJob& sj : packed.schedule.jobs) {
        schedule.jobs.push_back({sj.job, 0, sj.start});
      }
      mask |= entry.subset;
      free = entry.start + model_.types[idx(entry.type)].span();
    }
    schedule.normalize();
    return schedule;
  }

  const Instance& instance_;
  CostDpOptions options_;
  CalibrationModel model_;
  LimitPoller poller_;
  std::vector<const Job*> jobs_;
  std::vector<Time> starts_;
  std::map<std::pair<std::uint32_t, Time>, Entry> memo_;
  std::int64_t nodes_ = 0;
  bool budget_hit_ = false;
  SolveStatus sub_status_ = SolveStatus::kOk;
};

}  // namespace

CostDpResult solve_cost_dp(const Instance& instance,
                           const CostDpOptions& options) {
  CostDp dp(instance, options);
  return dp.run();
}

}  // namespace calisched

// Lazy EDF greedy for the calibration-cost model — the practical
// multi-machine heuristic the cost experiments compare against the
// exact solvers.
//
// Policy (the cost-model analogue of GreedyLazyIse): process jobs
// most-urgent-first; reuse the earliest feasible gap inside an open
// calibration's availability window; otherwise open a new calibration with
// the cheapest type that can host the job (ties broken toward longer
// length — more room to share), started as late as the urgent work due by
// d_j allows. No approximation guarantee; fails honestly when its choices
// paint it into a corner.
#pragma once

#include <string>

#include "core/schedule.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"

namespace calisched {

struct GreedyCostResult {
  bool feasible = false;
  /// kInfeasible when the greedy gave up (honest failure),
  /// kDeadlineExceeded / kCancelled when `limits` fired.
  SolveStatus status = SolveStatus::kOk;
  Schedule schedule;  ///< verifier-clean ISE schedule when feasible
  std::string error;
};

[[nodiscard]] GreedyCostResult solve_greedy_cost(
    const Instance& instance, const RunLimits& limits = RunLimits::none());

}  // namespace calisched

// Single-machine minimum-cost calibration DP under a type table.
//
// On one machine the calibrations of any strict-policy schedule are
// totally ordered by occupancy, so an optimal schedule decomposes into a
// sequence of (start, type, job set) blocks with strictly increasing
// availability windows. The DP exploits exactly that: a state is
// (set of scheduled jobs, earliest next start), and a transition opens one
// calibration — a start s at or after the machine frees up, a type k, and
// a nonempty subset of the remaining jobs that fits type k's length and
// packs exactly into the clipped availability window — paying c_k and
// advancing the free time to s + delta_k + L_k.
//
// The subset enumeration makes this exponential in n (it handles
// arbitrary non-unit processing times, unlike the polynomial unit-job DPs
// of Angel et al.); states are memoized on (mask, free time) and a node
// budget keeps runaways honest. Registered as the `dp-calib-cost`
// exact algorithm for single-machine instances.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"

namespace calisched {

struct CostDpOptions {
  std::int64_t node_budget = 5'000'000;
  /// Deadline + cancellation, polled inside the DP loops.
  RunLimits limits;
};

struct CostDpResult {
  /// True when the DP ran to completion (budget not exhausted).
  bool solved = false;
  /// True when a single-machine schedule exists.
  bool feasible = false;
  /// kOk, kInfeasible, kLimitExceeded, kDeadlineExceeded / kCancelled.
  SolveStatus status = SolveStatus::kOk;
  std::int64_t total_cost = 0;  ///< minimum total cost when feasible
  Schedule schedule;            ///< a cost-optimal schedule when feasible
  std::int64_t nodes = 0;
};

/// Requires instance.machines == 1 and at most 20 jobs (mask-indexed).
[[nodiscard]] CostDpResult solve_cost_dp(const Instance& instance,
                                         const CostDpOptions& options = {});

}  // namespace calisched

// Exact minimum-cost calibration search under a calibration-type table
// (Angel, Bampis, Chau, Zissimopoulos 2015).
//
// The oracle the cost-model experiments measure against. It generalizes
// the exact-ise branch-and-bound: candidate calibrations are now
// (start, type) pairs, exclusivity is checked on machine *occupancy*
// (activation delay included), jobs fit only inside a type's availability
// window, and the objective is the sum of type costs instead of the count.
//
// Completeness mirrors exact_ise.cpp: left-shifting any feasible schedule
// to its integer fixpoint keeps every calibration's type, so searching all
// integer start times per type suffices. The search enumerates calibration
// counts k upward; within each k it branch-and-bounds on cost (a partial
// selection is cut once partial + remaining * min_cost can no longer beat
// the best complete solution), and the k loop stops when even k copies of
// the cheapest type cost at least the best found. Exponential by design; a
// node budget keeps it honest.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"

namespace calisched {

struct CalibCostOptions {
  std::int64_t node_budget = 5'000'000;
  /// Hard cap on the calibration count the search will try.
  int max_calibrations = 16;
  /// Deadline + cancellation, polled inside the search loops.
  RunLimits limits;
};

struct CalibCostResult {
  /// True when the search ran to completion (budget not exhausted).
  bool solved = false;
  /// True when a feasible schedule with <= max_calibrations exists.
  bool feasible = false;
  /// kOk (optimum found), kInfeasible (exhausted the calibration cap),
  /// kLimitExceeded (node budget), kDeadlineExceeded / kCancelled.
  SolveStatus status = SolveStatus::kOk;
  std::int64_t total_cost = 0;  ///< minimum total cost when feasible
  Schedule schedule;            ///< a cost-optimal schedule when feasible
  std::int64_t nodes = 0;
};

[[nodiscard]] CalibCostResult solve_exact_calib_cost(
    const Instance& instance, const CalibCostOptions& options = {});

}  // namespace calisched

// solve_greedy_cost — lazy binning generalized to calibration-type tables.
// See the header comment for the policy.
#include "calib/greedy_cost.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/arith.hpp"

namespace calisched {
namespace {

/// An open calibration and the runs already packed into it.
struct OpenCalibration {
  int machine;
  Time start;
  int type;
  Time avail_start;  ///< start + activation delay
  Time avail_end;    ///< start + activation delay + length
  std::vector<std::pair<Time, Time>> runs;  // sorted, disjoint [s, e)

  /// Earliest start for a p-length run inside the availability window,
  /// within [release, deadline), avoiding existing runs; -max() when
  /// impossible.
  [[nodiscard]] Time earliest_fit(Time p, Time release, Time deadline) const {
    const Time lo = std::max(avail_start, release);
    const Time hi = std::min(avail_end, deadline);
    Time cursor = lo;
    for (const auto& [s, e] : runs) {
      if (cursor + p <= std::min(s, hi)) return cursor;
      cursor = std::max(cursor, e);
    }
    if (cursor + p <= hi) return cursor;
    return std::numeric_limits<Time>::min();
  }

  void insert_run(Time s, Time p) {
    runs.emplace_back(s, s + p);
    std::sort(runs.begin(), runs.end());
  }
};

/// Occupancy interval of a calibration already placed on a machine.
struct Occupancy {
  Time start;
  Time end;  ///< start + span of its type
};

}  // namespace

GreedyCostResult solve_greedy_cost(const Instance& instance,
                                   const RunLimits& limits) {
  GreedyCostResult result;
  LimitPoller poller(limits, /*stride=*/16);
  const CalibrationModel model = instance.effective_model();
  const int m = instance.machines;

  // Cheapest-first type preference; longer length breaks ties (more room
  // to share the calibration with later jobs).
  std::vector<int> type_order(model.size());
  for (std::size_t k = 0; k < model.size(); ++k) {
    type_order[k] = static_cast<int>(k);
  }
  std::sort(type_order.begin(), type_order.end(), [&](int a, int b) {
    const CalibrationType& ta = model.types[static_cast<std::size_t>(a)];
    const CalibrationType& tb = model.types[static_cast<std::size_t>(b)];
    if (ta.cost != tb.cost) return ta.cost < tb.cost;
    if (ta.length != tb.length) return ta.length > tb.length;
    return a < b;
  });

  // Most-urgent-first (deadline, release, id).
  std::vector<const Job*> order;
  order.reserve(instance.size());
  for (const Job& job : instance.jobs) order.push_back(&job);
  std::sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    if (a->deadline != b->deadline) return a->deadline < b->deadline;
    if (a->release != b->release) return a->release < b->release;
    return a->id < b->id;
  });

  std::vector<OpenCalibration> calibrations;
  std::vector<std::vector<Occupancy>> machine_occupancy(
      static_cast<std::size_t>(m));
  Schedule schedule = Schedule::empty_like(instance, m);

  for (std::size_t index = 0; index < order.size(); ++index) {
    if (poller.poll() != SolveStatus::kOk) {
      return fail_result(result, poller.status());
    }
    const Job& job = *order[index];
    // 1) Reuse: earliest feasible start across open calibrations (free —
    //    the calibration is already paid for).
    OpenCalibration* best_cal = nullptr;
    Time best_start = std::numeric_limits<Time>::max();
    for (OpenCalibration& cal : calibrations) {
      const Time s = cal.earliest_fit(job.proc, job.release, job.deadline);
      if (s != std::numeric_limits<Time>::min() && s < best_start) {
        best_start = s;
        best_cal = &cal;
      }
    }
    if (best_cal != nullptr) {
      best_cal->insert_run(best_start, job.proc);
      schedule.jobs.push_back({job.id, best_cal->machine, best_start});
      continue;
    }

    // 2) Open a new calibration with the cheapest hosting type, as late as
    //    the work due by d_j allows: the unscheduled jobs with deadline
    //    <= d_j need their total work done by then, so aim the availability
    //    window at [d_j - max(p_j, ceil(W_due / m)), d_j), clamped so the
    //    window still reaches d_j.
    Time due_work = 0;
    for (std::size_t k = index; k < order.size(); ++k) {
      if (order[k]->deadline <= job.deadline) due_work += order[k]->proc;
    }
    const Time lead = std::max<Time>(job.proc, ceil_div(due_work, m));

    int chosen_machine = -1;
    int chosen_type = -1;
    Time chosen_start = std::numeric_limits<Time>::min();
    for (const int k : type_order) {
      const CalibrationType& type = model.types[static_cast<std::size_t>(k)];
      if (job.proc > type.length) continue;
      const Time target = std::max(job.deadline - type.span(),
                                   job.deadline - lead - type.activation_delay);
      for (int machine = 0; machine < m; ++machine) {
        const auto& occupied = machine_occupancy[static_cast<std::size_t>(machine)];
        // Latest t <= target with occupancy [t, t + span) clear of this
        // machine's calibrations.
        Time t = target;
        for (;;) {
          Time blocker = std::numeric_limits<Time>::min();
          bool blocked = false;
          for (const Occupancy& occ : occupied) {
            if (occ.start < t + type.span() && t < occ.end) {
              blocked = true;
              blocker = std::max(blocker, occ.start);
            }
          }
          if (!blocked) break;
          t = blocker - type.span();
        }
        // The job must fit the availability window: start >= max(t + delay,
        // r_j), start + p <= min(t + delay + length, d_j).
        const Time s = std::max(t + type.activation_delay, job.release);
        if (s + job.proc > std::min(t + type.span(), job.deadline)) continue;
        if (t > chosen_start) {
          chosen_start = t;
          chosen_machine = machine;
          chosen_type = k;
        }
      }
      if (chosen_machine >= 0) break;  // cheapest hosting type wins
    }
    if (chosen_machine < 0) {
      return fail_result(result, SolveStatus::kInfeasible,
                         "no machine can open a calibration for job " +
                             std::to_string(job.id),
                         "greedy-calib-cost");
    }
    const CalibrationType& type =
        model.types[static_cast<std::size_t>(chosen_type)];
    OpenCalibration cal{chosen_machine,
                        chosen_start,
                        chosen_type,
                        chosen_start + type.activation_delay,
                        chosen_start + type.span(),
                        {}};
    const Time s = std::max(cal.avail_start, job.release);
    cal.insert_run(s, job.proc);
    schedule.jobs.push_back({job.id, chosen_machine, s});
    schedule.calibrations.push_back({chosen_machine, chosen_start, chosen_type});
    machine_occupancy[static_cast<std::size_t>(chosen_machine)].push_back(
        {chosen_start, chosen_start + type.span()});
    calibrations.push_back(std::move(cal));
  }
  schedule.normalize();
  result.feasible = true;
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace calisched

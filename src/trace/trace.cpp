#include "trace/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace calisched {
namespace {

template <typename Vec>
auto* find_by_first(Vec& entries, std::string_view name) {
  for (auto& entry : entries) {
    if (entry.first == name) return &entry;
  }
  return static_cast<typename Vec::value_type*>(nullptr);
}

}  // namespace

void TraceContext::add(std::string_view counter, std::int64_t delta) {
  if (auto* entry = find_by_first(counters_, counter)) {
    entry->second += delta;
    return;
  }
  counters_.emplace_back(std::string(counter), delta);
}

void TraceContext::set(std::string_view counter, std::int64_t value) {
  if (auto* entry = find_by_first(counters_, counter)) {
    entry->second = value;
    return;
  }
  counters_.emplace_back(std::string(counter), value);
}

std::int64_t TraceContext::counter(std::string_view name) const {
  for (const auto& [key, value] : counters_) {
    if (key == name) return value;
  }
  return 0;
}

bool TraceContext::has_counter(std::string_view name) const {
  for (const auto& [key, value] : counters_) {
    if (key == name) return true;
  }
  return false;
}

void TraceContext::set_value(std::string_view name, double value) {
  if (auto* entry = find_by_first(values_, name)) {
    entry->second = value;
    return;
  }
  values_.emplace_back(std::string(name), value);
}

double TraceContext::value(std::string_view name) const {
  for (const auto& [key, value] : values_) {
    if (key == name) return value;
  }
  return 0.0;
}

void TraceContext::note(std::string_view key, std::string_view value) {
  for (NoteSet& set : notes_) {
    if (set.key != key) continue;
    if (std::find(set.values.begin(), set.values.end(), value) ==
        set.values.end()) {
      set.values.emplace_back(value);
    }
    return;
  }
  notes_.push_back({std::string(key), {std::string(value)}});
}

std::vector<std::string> TraceContext::notes(std::string_view key) const {
  for (const NoteSet& set : notes_) {
    if (set.key == key) return set.values;
  }
  return {};
}

void TraceContext::record_span(std::string_view name, std::int64_t ns) {
  for (SpanStat& span : spans_) {
    if (span.name != name) continue;
    span.total_ns += ns;
    ++span.count;
    return;
  }
  spans_.push_back({std::string(name), ns, 1});
}

std::int64_t TraceContext::span_ns(std::string_view name) const {
  for (const SpanStat& span : spans_) {
    if (span.name == name) return span.total_ns;
  }
  return 0;
}

std::int64_t TraceContext::span_count(std::string_view name) const {
  for (const SpanStat& span : spans_) {
    if (span.name == name) return span.count;
  }
  return 0;
}

bool TraceContext::has_span(std::string_view name) const {
  for (const SpanStat& span : spans_) {
    if (span.name == name) return true;
  }
  return false;
}

void TraceContext::absorb(const TraceContext& other) {
  for (const auto& [key, value] : other.counters_) add(key, value);
  for (const auto& [key, value] : other.values_) set_value(key, value);
  for (const NoteSet& set : other.notes_) {
    for (const std::string& value : set.values) note(set.key, value);
  }
  for (const SpanStat& span : other.spans_) {
    // record_span would bump count by 1 per call; merge the aggregate.
    bool merged = false;
    for (SpanStat& mine : spans_) {
      if (mine.name != span.name) continue;
      mine.total_ns += span.total_ns;
      mine.count += span.count;
      merged = true;
      break;
    }
    if (!merged) spans_.push_back(span);
  }
  for (const auto& other_child : other.children_) {
    child(other_child->name_).absorb(*other_child);
  }
}

TraceContext& TraceContext::child(std::string_view name) {
  for (const auto& existing : children_) {
    if (existing->name_ == name) return *existing;
  }
  children_.push_back(std::make_unique<TraceContext>(std::string(name)));
  return *children_.back();
}

const TraceContext* TraceContext::find(std::string_view name) const {
  for (const auto& existing : children_) {
    if (existing->name_ == name) return existing.get();
  }
  return nullptr;
}

JsonValue TraceContext::to_json() const {
  JsonValue::Object object;
  object.emplace_back("name", JsonValue(name_));
  if (!counters_.empty()) {
    JsonValue::Object counters;
    for (const auto& [key, value] : counters_) {
      counters.emplace_back(key, JsonValue(value));
    }
    object.emplace_back("counters", JsonValue(std::move(counters)));
  }
  if (!values_.empty()) {
    JsonValue::Object values;
    for (const auto& [key, value] : values_) {
      values.emplace_back(key, JsonValue(value));
    }
    object.emplace_back("values", JsonValue(std::move(values)));
  }
  if (!notes_.empty()) {
    JsonValue::Object notes;
    for (const NoteSet& set : notes_) {
      JsonValue::Array values;
      for (const std::string& value : set.values) values.emplace_back(value);
      notes.emplace_back(set.key, JsonValue(std::move(values)));
    }
    object.emplace_back("notes", JsonValue(std::move(notes)));
  }
  if (!spans_.empty()) {
    JsonValue::Object spans;
    for (const SpanStat& span : spans_) {
      JsonValue::Object stat;
      stat.emplace_back("ns", JsonValue(span.total_ns));
      stat.emplace_back("count", JsonValue(span.count));
      spans.emplace_back(span.name, JsonValue(std::move(stat)));
    }
    object.emplace_back("spans", JsonValue(std::move(spans)));
  }
  if (!children_.empty()) {
    JsonValue::Array children;
    for (const auto& child_context : children_) {
      children.push_back(child_context->to_json());
    }
    object.emplace_back("children", JsonValue(std::move(children)));
  }
  return JsonValue(std::move(object));
}

std::string TraceContext::json(int indent) const {
  return to_json().dump(indent);
}

std::unique_ptr<TraceContext> TraceContext::from_json(const JsonValue& value) {
  if (!value.is_object()) {
    throw std::runtime_error("trace json: expected an object");
  }
  const JsonValue* name = value.find("name");
  if (!name || !name->is_string()) {
    throw std::runtime_error("trace json: missing string 'name'");
  }
  auto context = std::make_unique<TraceContext>(name->as_string());
  if (const JsonValue* counters = value.find("counters")) {
    for (const auto& [key, entry] : counters->as_object()) {
      context->set(key, entry.as_int());
    }
  }
  if (const JsonValue* values = value.find("values")) {
    for (const auto& [key, entry] : values->as_object()) {
      context->set_value(key, entry.as_double());
    }
  }
  if (const JsonValue* notes = value.find("notes")) {
    for (const auto& [key, entries] : notes->as_object()) {
      for (const JsonValue& entry : entries.as_array()) {
        context->note(key, entry.as_string());
      }
    }
  }
  if (const JsonValue* spans = value.find("spans")) {
    for (const auto& [key, stat] : spans->as_object()) {
      const JsonValue* ns = stat.find("ns");
      const JsonValue* count = stat.find("count");
      if (!ns || !count) {
        throw std::runtime_error("trace json: span without ns/count");
      }
      SpanStat span{key, ns->as_int(), count->as_int()};
      context->spans_.push_back(std::move(span));
    }
  }
  if (const JsonValue* children = value.find("children")) {
    for (const JsonValue& entry : children->as_array()) {
      context->children_.push_back(from_json(entry));
    }
  }
  return context;
}

std::unique_ptr<TraceContext> TraceContext::parse(std::string_view json_text) {
  return from_json(JsonValue::parse(json_text));
}

}  // namespace calisched

// A minimal ordered JSON document model with a writer and a strict
// recursive-descent parser.
//
// This exists so the telemetry layer (trace.hpp) and the bench harness can
// emit and round-trip structured records without an external dependency.
// Scope is deliberately small: objects preserve insertion order (so traces
// serialize deterministically), numbers distinguish integers from doubles
// (counter values survive a round trip exactly), and the parser rejects
// anything RFC 8259 rejects except it does not enforce a nesting limit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace calisched {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered; duplicate keys are not rejected but `find` returns
  /// the first match.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool value) : value_(value) {}
  JsonValue(std::int64_t value) : value_(value) {}
  JsonValue(int value) : value_(static_cast<std::int64_t>(value)) {}
  JsonValue(std::size_t value) : value_(static_cast<std::int64_t>(value)) {}
  JsonValue(double value) : value_(value) {}
  JsonValue(std::string value) : value_(std::move(value)) {}
  JsonValue(std::string_view value) : value_(std::string(value)) {}
  JsonValue(const char* value) : value_(std::string(value)) {}
  JsonValue(Array value) : value_(std::move(value)) {}
  JsonValue(Object value) : value_(std::move(value)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] std::int64_t as_int() const;      ///< int, or a lossless double
  [[nodiscard]] double as_double() const;         ///< any number
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(value_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(value_); }

  /// First member with `key`, or nullptr. Object only.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Appends a member (object) — no duplicate-key check.
  void set(std::string key, JsonValue value);

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  void write(std::ostream& out, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses one JSON document (throws std::runtime_error with position info
  /// on malformed input; trailing non-whitespace is an error).
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  void write_impl(std::ostream& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace calisched

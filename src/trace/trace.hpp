// Structured telemetry: named counters, nanosecond span timers, and a
// hierarchical per-solve TraceContext that serializes to JSON.
//
// Every pipeline stage reports through one of these instead of a bespoke
// telemetry struct: the solver owns a root context, each pipeline gets a
// child ("long_window", "short_window"), and each substrate a grandchild
// ("simplex", "mm"). The legacy LongWindowTelemetry / ShortWindowTelemetry
// structs are derived *from* the trace as compatibility views.
//
// Naming scheme (see DESIGN.md "Telemetry & tracing"):
//   * contexts: snake_case stage names ("long_window", "simplex", "mm");
//   * counters/values: dotted paths, category first ("lp.pivots",
//     "calibrations.total", "mm.machines.sum");
//   * spans: the stage verb being timed ("lp", "rounding", "edf", "mm");
//     repeated spans with one name aggregate (total_ns + count).
//
// Thread-safety: a TraceContext is NOT internally synchronized. The
// pipelines only mutate their context from the solve's calling thread
// (the simplex's parallel row elimination happens *inside* a pivot, while
// counters are touched once per pivot on the caller); concurrent solves
// must each own a separate context, which is how the bench harness and the
// batch tests use them. Fan-out stages that *do* record from worker
// threads (the parallel short-window interval solve) follow the
// thread-local-child contract instead: each worker records into a scratch
// TraceContext it exclusively owns, and after the workers have joined the
// owner merges the scratch traces into the shared parent with absorb(), in
// a deterministic order fixed by the work items (never by completion
// time). That keeps the merged trace — counter values *and* key insertion
// order — byte-identical at any thread count.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/json.hpp"

namespace calisched {

class TraceContext {
 public:
  explicit TraceContext(std::string name = "trace") : name_(std::move(name)) {}

  // Children hold stable pointers into this object; copying/moving would
  // silently detach live spans, so neither is allowed.
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- integer counters ------------------------------------------------------
  void add(std::string_view counter, std::int64_t delta = 1);
  void set(std::string_view counter, std::int64_t value);
  [[nodiscard]] std::int64_t counter(std::string_view name) const;  ///< 0 if absent
  [[nodiscard]] bool has_counter(std::string_view name) const;

  // --- double-valued gauges --------------------------------------------------
  void set_value(std::string_view name, double value);
  [[nodiscard]] double value(std::string_view name) const;  ///< 0.0 if absent

  // --- string annotations (distinct values per key, insertion order) --------
  void note(std::string_view key, std::string_view value);
  [[nodiscard]] std::vector<std::string> notes(std::string_view key) const;

  // --- spans -----------------------------------------------------------------
  /// Adds `ns` to the span's running total (creating it on first use).
  void record_span(std::string_view name, std::int64_t ns);
  [[nodiscard]] std::int64_t span_ns(std::string_view name) const;    ///< 0 if absent
  [[nodiscard]] std::int64_t span_count(std::string_view name) const; ///< 0 if absent
  [[nodiscard]] bool has_span(std::string_view name) const;

  // --- merging ---------------------------------------------------------------
  /// Folds everything recorded in `other` into this context: counters are
  /// summed, gauges overwritten, notes unioned (insertion order preserved),
  /// spans merged by summing total_ns and count, and children merged
  /// recursively by name (created here when absent). `other` is left
  /// untouched and its name is ignored — only its contents transfer. This is
  /// the ordered-merge half of the thread-local-child contract above; the
  /// caller must serialize absorb() calls and fix their order independently
  /// of thread scheduling.
  void absorb(const TraceContext& other);

  // --- hierarchy -------------------------------------------------------------
  /// Finds or creates the child with `name`; the reference stays valid for
  /// this context's lifetime.
  TraceContext& child(std::string_view name);
  [[nodiscard]] const TraceContext* find(std::string_view name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<TraceContext>>& children()
      const noexcept {
    return children_;
  }

  // --- serialization ---------------------------------------------------------
  [[nodiscard]] JsonValue to_json() const;
  [[nodiscard]] std::string json(int indent = 2) const;
  /// Inverse of to_json (throws std::runtime_error on schema mismatch).
  [[nodiscard]] static std::unique_ptr<TraceContext> from_json(const JsonValue& value);
  [[nodiscard]] static std::unique_ptr<TraceContext> parse(std::string_view json_text);

 private:
  struct SpanStat {
    std::string name;
    std::int64_t total_ns = 0;
    std::int64_t count = 0;
  };
  struct NoteSet {
    std::string key;
    std::vector<std::string> values;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::int64_t>> counters_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<SpanStat> spans_;
  std::vector<NoteSet> notes_;
  std::vector<std::unique_ptr<TraceContext>> children_;
};

/// RAII span timer. A null context makes every operation a no-op, so call
/// sites need no branching when tracing is disabled.
class TraceSpan {
 public:
  TraceSpan(TraceContext* context, std::string_view name)
      : context_(context), name_(name) {
    if (context_) start_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() { stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Records the elapsed time now instead of at scope exit (idempotent).
  void stop() {
    if (!context_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    context_->record_span(
        name_,
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    context_ = nullptr;
  }

 private:
  TraceContext* context_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

// Null-safe helpers for call sites holding a nullable TraceContext*.
inline void trace_add(TraceContext* context, std::string_view counter,
                      std::int64_t delta = 1) {
  if (context) context->add(counter, delta);
}
inline void trace_set(TraceContext* context, std::string_view counter,
                      std::int64_t value) {
  if (context) context->set(counter, value);
}
inline void trace_set_value(TraceContext* context, std::string_view name,
                            double value) {
  if (context) context->set_value(name, value);
}
inline void trace_note(TraceContext* context, std::string_view key,
                       std::string_view value) {
  if (context) context->note(key, value);
}
inline TraceContext* trace_child(TraceContext* context, std::string_view name) {
  return context ? &context->child(name) : nullptr;
}

}  // namespace calisched

#include "trace/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace calisched {
namespace {

void write_escaped(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_newline(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(object));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string result;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return result;
      if (c != '\\') {
        result += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': result += '"'; break;
        case '\\': result += '\\'; break;
        case '/': result += '/'; break;
        case 'b': result += '\b'; break;
        case 'f': result += '\f'; break;
        case 'n': result += '\n'; break;
        case 'r': result += '\r'; break;
        case 't': result += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (surrogate pairs are passed through as two
          // 3-byte sequences; the trace layer never emits them).
          if (code < 0x80) {
            result += static_cast<char>(code);
          } else if (code < 0x800) {
            result += static_cast<char>(0xC0 | (code >> 6));
            result += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            result += static_cast<char>(0xE0 | (code >> 12));
            result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            result += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("bad number");
    try {
      if (!is_double) return JsonValue(std::int64_t{std::stoll(token)});
      return JsonValue(std::stod(token));
    } catch (const std::exception&) {
      fail("number out of range: " + token);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::int64_t JsonValue::as_int() const {
  if (is_int()) return std::get<std::int64_t>(value_);
  return static_cast<std::int64_t>(std::get<double>(value_));
}

double JsonValue::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  return std::get<double>(value_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : as_object()) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (!is_object()) value_ = Object{};
  as_object().emplace_back(std::move(key), std::move(value));
}

void JsonValue::write(std::ostream& out, int indent) const {
  write_impl(out, indent, 0);
}

void JsonValue::write_impl(std::ostream& out, int indent, int depth) const {
  if (is_null()) {
    out << "null";
  } else if (is_bool()) {
    out << (as_bool() ? "true" : "false");
  } else if (is_int()) {
    out << std::get<std::int64_t>(value_);
  } else if (is_double()) {
    const double d = std::get<double>(value_);
    if (!std::isfinite(d)) {
      out << "null";  // JSON has no inf/nan
      return;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", d);
    out << buffer;
  } else if (is_string()) {
    write_escaped(out, as_string());
  } else if (is_array()) {
    const Array& array = as_array();
    if (array.empty()) {
      out << "[]";
      return;
    }
    out << '[';
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i) out << ',';
      write_newline(out, indent, depth + 1);
      array[i].write_impl(out, indent, depth + 1);
    }
    write_newline(out, indent, depth);
    out << ']';
  } else {
    const Object& object = as_object();
    if (object.empty()) {
      out << "{}";
      return;
    }
    out << '{';
    for (std::size_t i = 0; i < object.size(); ++i) {
      if (i) out << ',';
      write_newline(out, indent, depth + 1);
      write_escaped(out, object[i].first);
      out << (indent > 0 ? ": " : ":");
      object[i].second.write_impl(out, indent, depth + 1);
    }
    write_newline(out, indent, depth);
    out << '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream out;
  write(out, indent);
  return out.str();
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace calisched

// Minimal command-line flag parsing for example and bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` flags.
// Unknown flags are reported; positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace calisched {

class CliArgs {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  /// Typed accessors require the *entire* value to parse ("8abc" is an
  /// error, not 8; "ture" is an error, not false) and throw
  /// std::invalid_argument naming the flag and the offending value.
  /// get_bool accepts true/false/1/0/yes/no, case-insensitively.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names of flags that were provided but never queried; useful for
  /// catching typos in scripts (call last).
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace calisched

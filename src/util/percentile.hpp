// Order-statistic helpers shared by the service latency ring, the
// open-loop load generator, and the serving benches.
//
// One definition of "percentile" everywhere: nearest-rank over the sample
// vector via nth_element, so a p999 over 4096 samples and a p50 over 12
// samples go through the same rounding. Callers pass samples by value —
// the selection is destructive and the call sites all hold either a copy
// of a live ring or a merge buffer they are done with.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace calisched {

/// Nearest-rank percentile of `samples` at quantile `q` in [0, 1]: the
/// smallest value with at least ceil(q*N) samples at or below it, i.e.
/// sorted index clamp(ceil(q*N), 1, N) - 1. q=0 is the minimum, q=1 the
/// maximum, and a single sample answers every quantile. Returns 0 on an
/// empty sample set (the stats paths report zero rather than invent a
/// value before any request completed).
[[nodiscard]] inline std::int64_t percentile_of(
    std::vector<std::int64_t> samples, double q) {
  if (samples.empty()) return 0;
  const auto count = static_cast<double>(samples.size());
  const auto rank = static_cast<std::size_t>(
      std::clamp(std::ceil(q * count), 1.0, count)) - 1;
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

/// The percentile set every latency report in the repo carries. p999 is
/// only meaningful once the window holds >= 1000 samples; below that it
/// degrades to the maximum, which is still the honest tail statement.
struct LatencyPercentiles {
  std::int64_t p50_ns = 0;
  std::int64_t p95_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t samples = 0;
};

/// Computes the standard percentile set from one sample vector.
[[nodiscard]] inline LatencyPercentiles latency_percentiles(
    std::vector<std::int64_t> samples) {
  LatencyPercentiles out;
  out.samples = static_cast<std::int64_t>(samples.size());
  out.p50_ns = percentile_of(samples, 0.50);
  out.p95_ns = percentile_of(samples, 0.95);
  out.p99_ns = percentile_of(samples, 0.99);
  out.p999_ns = percentile_of(std::move(samples), 0.999);
  return out;
}

}  // namespace calisched

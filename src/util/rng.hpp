// Deterministic pseudo-random number generation for instance generators,
// property tests, and benchmarks.
//
// We deliberately avoid std::mt19937 + std::uniform_int_distribution because
// their outputs are not specified identically across standard libraries;
// reproducibility of generated instances across toolchains is a requirement
// for the experiment harness (EXPERIMENTS.md records per-seed results).
//
// The generator is xoshiro256** seeded via splitmix64, the standard
// recommendation of Blackman & Vigna.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

namespace calisched {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with explicit, portable semantics.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if a
/// caller accepts non-portable distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  /// Uses Lemire-style rejection to avoid modulo bias.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform01() < p; }

  /// Picks a uniformly random element index of a non-empty container size.
  [[nodiscard]] std::size_t index(std::size_t size) noexcept {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derives an independent child generator (for per-thread streams).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace calisched

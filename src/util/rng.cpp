#include "util/rng.hpp"

namespace calisched {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range requested; any draw is uniform.
    return static_cast<std::int64_t>((*this)());
  }
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t product = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(product);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      product = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return lo + static_cast<std::int64_t>(product >> 64);
}

}  // namespace calisched

// A small fixed-size thread pool with a parallel_for convenience wrapper.
//
// The experiment harness solves many independent scheduling instances per
// table row; parallelising at instance granularity keeps all state private
// to one task and needs no synchronisation beyond the queue itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace calisched {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future observes completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across the pool, blocking until done.
/// Exceptions from tasks are rethrown (first one wins) on the caller thread.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// The chunk size parallel_for_chunked derives when the caller passes 0:
/// enough chunks per worker (8) that an uneven tail still balances, capped
/// so one claim never spans more than 32 indices (neighbouring batch
/// records and instances stay inside a few cache lines of each other
/// without starving other workers on small counts).
[[nodiscard]] std::size_t default_chunk_size(std::size_t count,
                                             std::size_t workers) noexcept;

/// parallel_for, but each worker claims a contiguous run of `chunk`
/// indices per atomic bump instead of one. A worker therefore walks
/// adjacent elements of whatever arrays body() indexes — warmer caches,
/// one contention point per chunk instead of per index — while results
/// keyed by index stay identical to the unchunked form at any thread
/// count. chunk == 0 picks default_chunk_size(count, pool.size()).
void parallel_for_chunked(ThreadPool& pool, std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          std::size_t chunk = 0);

/// Process-wide default pool (lazily constructed, hardware concurrency).
ThreadPool& default_pool();

}  // namespace calisched

#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace calisched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::scoped_lock lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || pool.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  const std::size_t workers = std::min(pool.size(), count);
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t default_chunk_size(std::size_t count, std::size_t workers) noexcept {
  workers = std::max<std::size_t>(1, workers);
  return std::clamp<std::size_t>(count / (workers * 8), 1, 32);
}

void parallel_for_chunked(ThreadPool& pool, std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          std::size_t chunk) {
  if (count == 0) return;
  if (chunk == 0) chunk = default_chunk_size(count, pool.size());
  if (count <= chunk || pool.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  const std::size_t chunks = (count + chunk - 1) / chunk;
  const std::size_t workers = std::min(pool.size(), chunks);
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.submit([&, chunk] {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + chunk, count);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace calisched

#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace calisched {

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

Table::RowBuilder& Table::RowBuilder::cell(std::size_t value) {
  return cell(std::to_string(value));
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table::RowBuilder& Table::RowBuilder::cell(bool pass) {
  return cell(std::string(pass ? "PASS" : "FAIL"));
}

Table::RowBuilder::~RowBuilder() { table_->add_row(std::move(cells_)); }

void Table::print(std::ostream& out, std::string_view title) const {
  if (!title.empty()) out << "== " << title << " ==\n";
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size(), ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& out) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      out << '"';
      for (char ch : cell) {
        if (ch == '"') out << '"';
        out << ch;
      }
      out << '"';
    } else {
      out << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      emit_cell(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace calisched

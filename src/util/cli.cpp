#include "util/cli.hpp"

#include <stdexcept>

namespace calisched {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("bare '--' is not a flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";  // boolean flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : flags_) {
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace calisched

#include "util/cli.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace calisched {

namespace {

/// "flag --name expects a <kind>, got 'value'" — every numeric/boolean
/// parse failure reports through this so the offending flag is always
/// named (a raw std::stoll "stoll: invalid_argument" names nothing).
[[noreturn]] void bad_flag_value(const std::string& name,
                                 const std::string& value,
                                 const char* expected) {
  throw std::invalid_argument("flag --" + name + " expects " + expected +
                              ", got '" + value + "'");
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("bare '--' is not a flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";  // boolean flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  // Full-string parse: "8abc" and "" are errors, not 8 and an uncaught
  // std::invalid_argument from std::stoll.
  const std::string& text = it->second;
  std::int64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    bad_flag_value(name, text, "an integer");
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& text = it->second;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    bad_flag_value(name, text, "a number");
  }
  if (consumed != text.size()) bad_flag_value(name, text, "a number");
  return value;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::string text = it->second;
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  // "--verify=ture" used to silently mean false; now it is an error.
  bad_flag_value(name, it->second, "true/false/1/0/yes/no");
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : flags_) {
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace calisched

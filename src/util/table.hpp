// Aligned text tables and CSV emission for the experiment harness.
//
// Every bench binary prints one or more tables whose rows correspond to the
// entries recorded in EXPERIMENTS.md, so formatting lives in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace calisched {

/// A simple column-aligned table builder.
///
/// Usage:
///   Table t({"n", "calibrations", "bound", "ok"});
///   t.add_row({"16", "12", "48", "PASS"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience for building a row from heterogeneous values.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(&table) {}
    RowBuilder& cell(std::string value);
    RowBuilder& cell(std::string_view value) { return cell(std::string(value)); }
    RowBuilder& cell(const char* value) { return cell(std::string(value)); }
    RowBuilder& cell(std::int64_t value);
    RowBuilder& cell(std::size_t value);
    RowBuilder& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
    RowBuilder& cell(double value, int precision = 3);
    RowBuilder& cell(bool pass);  // renders PASS / FAIL
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table* table_;
    std::vector<std::string> cells_;
  };

  [[nodiscard]] RowBuilder row() { return RowBuilder(*this); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Writes the table with aligned columns and a rule under the header.
  void print(std::ostream& out, std::string_view title = "") const;

  /// Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no locale surprises).
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace calisched

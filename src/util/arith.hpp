// Small integer-arithmetic helpers used across the scheduling code.
//
// All instance times are int64_t; these helpers keep divisions and interval
// arithmetic explicit about rounding direction, which matters when snapping
// calibration starts to the canonical grid of Lemma 3.
#pragma once

#include <cassert>
#include <cstdint>
#include <numeric>

namespace calisched {

using Time = std::int64_t;

/// floor(a / b) for b > 0, correct for negative a.
[[nodiscard]] constexpr Time floor_div(Time a, Time b) noexcept {
  assert(b > 0);
  Time q = a / b;
  if ((a % b != 0) && (a < 0)) --q;
  return q;
}

/// ceil(a / b) for b > 0, correct for negative a.
[[nodiscard]] constexpr Time ceil_div(Time a, Time b) noexcept {
  assert(b > 0);
  return -floor_div(-a, b);
}

/// True iff half-open intervals [a1, a2) and [b1, b2) intersect.
[[nodiscard]] constexpr bool intervals_overlap(Time a1, Time a2, Time b1,
                                               Time b2) noexcept {
  return a1 < b2 && b1 < a2;
}

/// True iff [inner1, inner2) is contained in [outer1, outer2).
[[nodiscard]] constexpr bool interval_contains(Time outer1, Time outer2,
                                               Time inner1, Time inner2) noexcept {
  return outer1 <= inner1 && inner2 <= outer2;
}

/// Least common multiple that asserts against overflow in debug builds.
[[nodiscard]] constexpr std::int64_t checked_lcm(std::int64_t a, std::int64_t b) noexcept {
  assert(a > 0 && b > 0);
  const std::int64_t g = std::gcd(a, b);
  const std::int64_t result = (a / g) * b;
  assert(result / b == a / g);  // overflow guard
  return result;
}

}  // namespace calisched

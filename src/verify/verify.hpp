// Independent feasibility checking for ISE, TISE, and MM schedules.
//
// Every algorithm result in tests, examples, and benchmarks goes through
// these functions before any statistic is reported. The checks are written
// directly against the problem statement of Fineman & Sheridan (SPAA'15),
// not against any algorithm's internal representation:
//
//   (1) every job runs nonpreemptively within its window,
//   (2) every job lies completely inside one calibration's *availability*
//       window on its machine (post-activation, pre-expiry; under the unit
//       model that is the whole [start, start + T) interval),
//   (3) jobs on a machine do not overlap,
//   (4) calibrations on a machine do not overlap in machine *occupancy*
//       (activation delay included; footnote 3's strict variant),
//   (5) [TISE only] the containing availability window lies inside the job
//       window.
//
// Under an explicit calibration-type table (Angel et al.) the checks are
// type-aware — each calibration's windows come from its type record — and
// the result carries the total calibration cost alongside the count.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.hpp"

namespace calisched {

/// A machine-minimization schedule: jobs only, no calibrations.
///
/// `speed` supports the paper's s-speed resource augmentation for MM black
/// boxes: machines run `speed` times faster, job start times are stored in
/// ticks of 1/speed time units, and a job occupies exactly `proc` ticks
/// (p/speed real time). speed = 1 is the plain case (ticks = time units).
struct MMSchedule {
  int machines = 0;
  std::int64_t speed = 1;
  std::vector<ScheduledJob> jobs;
};

struct Violation {
  enum class Kind {
    kStructural,        ///< bad machine index, unknown/duplicate/missing job
    kWindow,            ///< job outside [r_j, d_j)
    kCalibrationCover,  ///< job not inside a calibration on its machine
    kJobOverlap,        ///< two jobs overlap on a machine
    kCalibrationOverlap,///< two calibrations overlap on a machine
    kTise,              ///< TISE restriction violated
    kArithmetic,        ///< inexact tick arithmetic (denominator/speed)
  };
  Kind kind;
  std::string message;
};

struct VerifyResult {
  std::vector<Violation> violations;
  /// Objective summary, filled by verify_ise regardless of outcome:
  /// calibration count and total calibration cost (the generalized
  /// objective; equals the count under the unit model).
  std::size_t calibrations = 0;
  std::int64_t total_cost = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// Human-readable multi-line report ("ok" when clean).
  [[nodiscard]] std::string to_string() const;
};

/// Calibration-exclusivity policy. The paper's main model (footnote 3:
/// "the more difficult version") forbids overlapping calibrations on one
/// machine; the relaxed variant mentioned there allows a calibration to be
/// performed before the previous one ends (each job must still fit inside
/// a single calibration interval).
enum class CalibrationPolicy { kStrict, kOverlapAllowed };

/// Verifies a schedule against the full ISE feasibility definition.
/// With `require_tise`, additionally enforces the trimmed restriction.
[[nodiscard]] VerifyResult verify_ise(
    const Instance& instance, const Schedule& schedule,
    bool require_tise = false,
    CalibrationPolicy policy = CalibrationPolicy::kStrict);

/// Shorthand for verify_ise(instance, schedule, /*require_tise=*/true).
[[nodiscard]] VerifyResult verify_tise(const Instance& instance,
                                       const Schedule& schedule);

/// Verifies an MM schedule: windows, nonpreemption, machine exclusivity.
[[nodiscard]] VerifyResult verify_mm(const Instance& instance,
                                     const MMSchedule& schedule);

}  // namespace calisched

#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace calisched {
namespace {

void add(VerifyResult& result, Violation::Kind kind, const std::string& message) {
  result.violations.push_back({kind, message});
}

std::string job_tag(JobId id) { return "job " + std::to_string(id); }

/// Checks that no two half-open intervals in `spans` (sorted by start)
/// overlap; reports via `what`.
void check_disjoint(VerifyResult& result, Violation::Kind kind,
                    std::vector<std::pair<Time, Time>>& spans, int machine,
                    const char* what) {
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first < spans[i - 1].second) {
      std::ostringstream msg;
      msg << what << " overlap on machine " << machine << ": ["
          << spans[i - 1].first << ", " << spans[i - 1].second << ") and ["
          << spans[i].first << ", " << spans[i].second << ") ticks";
      add(result, kind, msg.str());
    }
  }
}

}  // namespace

std::string VerifyResult::to_string() const {
  if (ok()) return "ok";
  std::ostringstream out;
  out << violations.size() << " violation(s):\n";
  for (const Violation& violation : violations) {
    out << "  - " << violation.message << '\n';
  }
  return out.str();
}

VerifyResult verify_ise(const Instance& instance, const Schedule& schedule,
                        bool require_tise, CalibrationPolicy policy) {
  VerifyResult result;
  const std::int64_t D = schedule.time_denominator;
  const std::int64_t s = schedule.speed;
  if (D < 1 || s < 1) {
    add(result, Violation::Kind::kArithmetic,
        "time_denominator and speed must be >= 1");
    return result;
  }
  const Time cal_len = schedule.T * D;
  if (schedule.T != instance.T) {
    add(result, Violation::Kind::kStructural,
        "schedule T does not match instance T");
  }

  // --- structural checks on machines and job multiplicity -----------------
  std::map<JobId, const Job*> by_id;
  for (const Job& job : instance.jobs) by_id[job.id] = &job;
  std::map<JobId, int> times_scheduled;
  for (const ScheduledJob& sj : schedule.jobs) {
    if (sj.machine < 0 || sj.machine >= schedule.machines) {
      add(result, Violation::Kind::kStructural,
          job_tag(sj.job) + ": machine index " + std::to_string(sj.machine) +
              " out of range [0, " + std::to_string(schedule.machines) + ")");
    }
    if (!by_id.count(sj.job)) {
      add(result, Violation::Kind::kStructural,
          job_tag(sj.job) + " is not in the instance");
      continue;
    }
    ++times_scheduled[sj.job];
  }
  for (const Job& job : instance.jobs) {
    const int count = times_scheduled.count(job.id) ? times_scheduled[job.id] : 0;
    if (count != 1) {
      add(result, Violation::Kind::kStructural,
          job_tag(job.id) + " scheduled " + std::to_string(count) +
              " times (expected exactly 1)");
    }
  }
  for (const Calibration& cal : schedule.calibrations) {
    if (cal.machine < 0 || cal.machine >= schedule.machines) {
      add(result, Violation::Kind::kStructural,
          "calibration at tick " + std::to_string(cal.start) +
              ": machine index out of range");
    }
  }

  // --- per-job checks: arithmetic, window, calibration containment --------
  for (const ScheduledJob& sj : schedule.jobs) {
    const auto it = by_id.find(sj.job);
    if (it == by_id.end()) continue;
    const Job& job = *it->second;
    if ((job.proc * D) % s != 0) {
      add(result, Violation::Kind::kArithmetic,
          job_tag(job.id) + ": p*D=" + std::to_string(job.proc * D) +
              " not divisible by speed " + std::to_string(s));
      continue;
    }
    const Time duration = (job.proc * D) / s;
    const Time start = sj.start;
    const Time finish = start + duration;
    if (start < job.release * D || finish > job.deadline * D) {
      std::ostringstream msg;
      msg << job_tag(job.id) << " runs [" << start << ", " << finish
          << ") ticks outside window [" << job.release * D << ", "
          << job.deadline * D << ")";
      add(result, Violation::Kind::kWindow, msg.str());
    }
    // Find a covering calibration on the same machine.
    const Calibration* cover = nullptr;
    for (const Calibration& cal : schedule.calibrations) {
      if (cal.machine == sj.machine && cal.start <= start &&
          finish <= cal.start + cal_len) {
        cover = &cal;
        break;
      }
    }
    if (cover == nullptr) {
      add(result, Violation::Kind::kCalibrationCover,
          job_tag(job.id) + " at tick " + std::to_string(start) +
              " on machine " + std::to_string(sj.machine) +
              " is not contained in any calibration");
    } else if (require_tise) {
      // TISE restriction: r_j <= t and t + T <= d_j, in ticks.
      if (cover->start < job.release * D ||
          cover->start + cal_len > job.deadline * D) {
        std::ostringstream msg;
        msg << job_tag(job.id) << ": containing calibration [" << cover->start
            << ", " << cover->start + cal_len
            << ") ticks is not inside the job window [" << job.release * D
            << ", " << job.deadline * D << ")";
        add(result, Violation::Kind::kTise, msg.str());
      }
    }
  }

  // --- per-machine exclusivity ---------------------------------------------
  std::map<int, std::vector<std::pair<Time, Time>>> job_spans;
  for (const ScheduledJob& sj : schedule.jobs) {
    const auto it = by_id.find(sj.job);
    if (it == by_id.end()) continue;
    const Job& job = *it->second;
    if ((job.proc * D) % s != 0) continue;  // already reported
    job_spans[sj.machine].emplace_back(sj.start, sj.start + (job.proc * D) / s);
  }
  for (auto& [machine, spans] : job_spans) {
    check_disjoint(result, Violation::Kind::kJobOverlap, spans, machine, "jobs");
  }
  if (policy == CalibrationPolicy::kStrict) {
    std::map<int, std::vector<std::pair<Time, Time>>> cal_spans;
    for (const Calibration& cal : schedule.calibrations) {
      cal_spans[cal.machine].emplace_back(cal.start, cal.start + cal_len);
    }
    for (auto& [machine, spans] : cal_spans) {
      check_disjoint(result, Violation::Kind::kCalibrationOverlap, spans,
                     machine, "calibrations");
    }
  }
  return result;
}

VerifyResult verify_tise(const Instance& instance, const Schedule& schedule) {
  return verify_ise(instance, schedule, /*require_tise=*/true);
}

VerifyResult verify_mm(const Instance& instance, const MMSchedule& schedule) {
  VerifyResult result;
  const std::int64_t s = schedule.speed;
  if (s < 1) {
    add(result, Violation::Kind::kArithmetic, "MM speed must be >= 1");
    return result;
  }
  std::map<JobId, const Job*> by_id;
  for (const Job& job : instance.jobs) by_id[job.id] = &job;
  std::map<JobId, int> times_scheduled;
  std::map<int, std::vector<std::pair<Time, Time>>> spans;
  for (const ScheduledJob& sj : schedule.jobs) {
    if (sj.machine < 0 || sj.machine >= schedule.machines) {
      add(result, Violation::Kind::kStructural,
          job_tag(sj.job) + ": machine index out of range");
    }
    const auto it = by_id.find(sj.job);
    if (it == by_id.end()) {
      add(result, Violation::Kind::kStructural,
          job_tag(sj.job) + " is not in the instance");
      continue;
    }
    ++times_scheduled[sj.job];
    const Job& job = *it->second;
    // Starts are in 1/s time units; the job occupies proc ticks.
    if (sj.start < job.release * s || sj.start + job.proc > job.deadline * s) {
      std::ostringstream msg;
      msg << job_tag(job.id) << " runs [" << sj.start << ", "
          << sj.start + job.proc << ") ticks outside window ["
          << job.release * s << ", " << job.deadline * s << ")";
      add(result, Violation::Kind::kWindow, msg.str());
    }
    spans[sj.machine].emplace_back(sj.start, sj.start + job.proc);
  }
  for (const Job& job : instance.jobs) {
    const int count = times_scheduled.count(job.id) ? times_scheduled[job.id] : 0;
    if (count != 1) {
      add(result, Violation::Kind::kStructural,
          job_tag(job.id) + " scheduled " + std::to_string(count) +
              " times (expected exactly 1)");
    }
  }
  for (auto& [machine, machine_spans] : spans) {
    check_disjoint(result, Violation::Kind::kJobOverlap, machine_spans, machine,
                   "jobs");
  }
  return result;
}

}  // namespace calisched

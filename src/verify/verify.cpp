#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace calisched {
namespace {

void add(VerifyResult& result, Violation::Kind kind, const std::string& message) {
  result.violations.push_back({kind, message});
}

std::string job_tag(JobId id) { return "job " + std::to_string(id); }

/// Checks that no two half-open intervals in `spans` (sorted by start)
/// overlap; reports via `what`.
void check_disjoint(VerifyResult& result, Violation::Kind kind,
                    std::vector<std::pair<Time, Time>>& spans, int machine,
                    const char* what) {
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first < spans[i - 1].second) {
      std::ostringstream msg;
      msg << what << " overlap on machine " << machine << ": ["
          << spans[i - 1].first << ", " << spans[i - 1].second << ") and ["
          << spans[i].first << ", " << spans[i].second << ") ticks";
      add(result, kind, msg.str());
    }
  }
}

}  // namespace

std::string VerifyResult::to_string() const {
  if (ok()) return "ok";
  std::ostringstream out;
  out << violations.size() << " violation(s):\n";
  for (const Violation& violation : violations) {
    out << "  - " << violation.message << '\n';
  }
  return out.str();
}

VerifyResult verify_ise(const Instance& instance, const Schedule& schedule,
                        bool require_tise, CalibrationPolicy policy) {
  VerifyResult result;
  const std::int64_t D = schedule.time_denominator;
  const std::int64_t s = schedule.speed;
  if (D < 1 || s < 1) {
    add(result, Violation::Kind::kArithmetic,
        "time_denominator and speed must be >= 1");
    return result;
  }
  if (schedule.T != instance.T) {
    add(result, Violation::Kind::kStructural,
        "schedule T does not match instance T");
  }
  const CalibrationModel model = instance.effective_model();
  if (schedule.effective_model() != model) {
    add(result, Violation::Kind::kStructural,
        "schedule calibration-type table does not match the instance's");
  }
  const auto type_count = static_cast<int>(model.size());
  const auto type_ok = [&](const Calibration& cal) {
    return cal.type >= 0 && cal.type < type_count;
  };
  // Per-calibration windows in ticks, from the *instance's* table (the
  // schedule's table was just checked to agree).
  const auto type_of = [&](const Calibration& cal) -> const CalibrationType& {
    return model.types[static_cast<std::size_t>(cal.type)];
  };
  const auto avail_start = [&](const Calibration& cal) {
    return cal.start + type_of(cal).activation_delay * D;
  };
  const auto avail_end = [&](const Calibration& cal) {
    return cal.start + type_of(cal).span() * D;
  };

  // --- structural checks on machines and job multiplicity -----------------
  std::map<JobId, const Job*> by_id;
  for (const Job& job : instance.jobs) by_id[job.id] = &job;
  std::map<JobId, int> times_scheduled;
  for (const ScheduledJob& sj : schedule.jobs) {
    if (sj.machine < 0 || sj.machine >= schedule.machines) {
      add(result, Violation::Kind::kStructural,
          job_tag(sj.job) + ": machine index " + std::to_string(sj.machine) +
              " out of range [0, " + std::to_string(schedule.machines) + ")");
    }
    if (!by_id.count(sj.job)) {
      add(result, Violation::Kind::kStructural,
          job_tag(sj.job) + " is not in the instance");
      continue;
    }
    ++times_scheduled[sj.job];
  }
  for (const Job& job : instance.jobs) {
    const int count = times_scheduled.count(job.id) ? times_scheduled[job.id] : 0;
    if (count != 1) {
      add(result, Violation::Kind::kStructural,
          job_tag(job.id) + " scheduled " + std::to_string(count) +
              " times (expected exactly 1)");
    }
  }
  for (const Calibration& cal : schedule.calibrations) {
    if (cal.machine < 0 || cal.machine >= schedule.machines) {
      add(result, Violation::Kind::kStructural,
          "calibration at tick " + std::to_string(cal.start) +
              ": machine index out of range");
    }
    if (!type_ok(cal)) {
      add(result, Violation::Kind::kStructural,
          "calibration at tick " + std::to_string(cal.start) + ": type id " +
              std::to_string(cal.type) + " out of range [0, " +
              std::to_string(type_count) + ")");
    }
  }
  result.calibrations = schedule.calibrations.size();
  for (const Calibration& cal : schedule.calibrations) {
    if (type_ok(cal)) result.total_cost += type_of(cal).cost;
  }
  if (std::any_of(schedule.calibrations.begin(), schedule.calibrations.end(),
                  [&](const Calibration& cal) { return !type_ok(cal); })) {
    return result;  // windows below would index out of the table
  }

  // --- per-job checks: arithmetic, window, calibration containment --------
  for (const ScheduledJob& sj : schedule.jobs) {
    const auto it = by_id.find(sj.job);
    if (it == by_id.end()) continue;
    const Job& job = *it->second;
    if ((job.proc * D) % s != 0) {
      add(result, Violation::Kind::kArithmetic,
          job_tag(job.id) + ": p*D=" + std::to_string(job.proc * D) +
              " not divisible by speed " + std::to_string(s));
      continue;
    }
    const Time duration = (job.proc * D) / s;
    const Time start = sj.start;
    const Time finish = start + duration;
    if (start < job.release * D || finish > job.deadline * D) {
      std::ostringstream msg;
      msg << job_tag(job.id) << " runs [" << start << ", " << finish
          << ") ticks outside window [" << job.release * D << ", "
          << job.deadline * D << ")";
      add(result, Violation::Kind::kWindow, msg.str());
    }
    // Find a calibration whose availability window covers the run.
    const Calibration* cover = nullptr;
    for (const Calibration& cal : schedule.calibrations) {
      if (cal.machine == sj.machine && avail_start(cal) <= start &&
          finish <= avail_end(cal)) {
        cover = &cal;
        break;
      }
    }
    if (cover == nullptr) {
      add(result, Violation::Kind::kCalibrationCover,
          job_tag(job.id) + " at tick " + std::to_string(start) +
              " on machine " + std::to_string(sj.machine) +
              " is not contained in any calibration's availability window");
    } else if (require_tise) {
      // TISE restriction: the availability window nests in the job window.
      if (avail_start(*cover) < job.release * D ||
          avail_end(*cover) > job.deadline * D) {
        std::ostringstream msg;
        msg << job_tag(job.id) << ": containing calibration ["
            << avail_start(*cover) << ", " << avail_end(*cover)
            << ") ticks is not inside the job window [" << job.release * D
            << ", " << job.deadline * D << ")";
        add(result, Violation::Kind::kTise, msg.str());
      }
    }
  }

  // --- per-machine exclusivity ---------------------------------------------
  std::map<int, std::vector<std::pair<Time, Time>>> job_spans;
  for (const ScheduledJob& sj : schedule.jobs) {
    const auto it = by_id.find(sj.job);
    if (it == by_id.end()) continue;
    const Job& job = *it->second;
    if ((job.proc * D) % s != 0) continue;  // already reported
    job_spans[sj.machine].emplace_back(sj.start, sj.start + (job.proc * D) / s);
  }
  for (auto& [machine, spans] : job_spans) {
    check_disjoint(result, Violation::Kind::kJobOverlap, spans, machine, "jobs");
  }
  if (policy == CalibrationPolicy::kStrict) {
    // Occupancy spans: the activation delay occupies the machine too.
    std::map<int, std::vector<std::pair<Time, Time>>> cal_spans;
    for (const Calibration& cal : schedule.calibrations) {
      cal_spans[cal.machine].emplace_back(cal.start, avail_end(cal));
    }
    for (auto& [machine, spans] : cal_spans) {
      check_disjoint(result, Violation::Kind::kCalibrationOverlap, spans,
                     machine, "calibrations");
    }
  }
  return result;
}

VerifyResult verify_tise(const Instance& instance, const Schedule& schedule) {
  return verify_ise(instance, schedule, /*require_tise=*/true);
}

VerifyResult verify_mm(const Instance& instance, const MMSchedule& schedule) {
  VerifyResult result;
  const std::int64_t s = schedule.speed;
  if (s < 1) {
    add(result, Violation::Kind::kArithmetic, "MM speed must be >= 1");
    return result;
  }
  std::map<JobId, const Job*> by_id;
  for (const Job& job : instance.jobs) by_id[job.id] = &job;
  std::map<JobId, int> times_scheduled;
  std::map<int, std::vector<std::pair<Time, Time>>> spans;
  for (const ScheduledJob& sj : schedule.jobs) {
    if (sj.machine < 0 || sj.machine >= schedule.machines) {
      add(result, Violation::Kind::kStructural,
          job_tag(sj.job) + ": machine index out of range");
    }
    const auto it = by_id.find(sj.job);
    if (it == by_id.end()) {
      add(result, Violation::Kind::kStructural,
          job_tag(sj.job) + " is not in the instance");
      continue;
    }
    ++times_scheduled[sj.job];
    const Job& job = *it->second;
    // Starts are in 1/s time units; the job occupies proc ticks.
    if (sj.start < job.release * s || sj.start + job.proc > job.deadline * s) {
      std::ostringstream msg;
      msg << job_tag(job.id) << " runs [" << sj.start << ", "
          << sj.start + job.proc << ") ticks outside window ["
          << job.release * s << ", " << job.deadline * s << ")";
      add(result, Violation::Kind::kWindow, msg.str());
    }
    spans[sj.machine].emplace_back(sj.start, sj.start + job.proc);
  }
  for (const Job& job : instance.jobs) {
    const int count = times_scheduled.count(job.id) ? times_scheduled[job.id] : 0;
    if (count != 1) {
      add(result, Violation::Kind::kStructural,
          job_tag(job.id) + " scheduled " + std::to_string(count) +
              " times (expected exactly 1)");
    }
  }
  for (auto& [machine, machine_spans] : spans) {
    check_disjoint(result, Violation::Kind::kJobOverlap, machine_spans, machine,
                   "jobs");
  }
  return result;
}

}  // namespace calisched

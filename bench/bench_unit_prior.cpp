// Experiment E6 — prior work: unit-job instances (Bender et al., SPAA'13).
//
// The paper generalizes Bender et al.'s unit-job setting. On unit
// instances we compare:
//   * the exact optimum (tiny instances),
//   * the lazy-binning greedy reconstruction of Bender et al.,
//   * this paper's combined solver with the exact unit MM box.
// Bender et al. report optimality when a 1-machine schedule exists and a
// 2-approximation on m machines; the lazy reconstruction should track the
// optimum closely, while the general pipeline pays its constant factors.
#include <iostream>

#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "baselines/exact_ise.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "mm/mm.hpp"
#include "solver/ise_solver.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("E6", "unit jobs — prior work comparison", argc, argv);

  Table& table = bench.table(
      "comparison", {"seed", "n", "LB", "exact", "bender-lazy", "lazy/exact",
                     "our-solver", "all-verified"});
  double worst_lazy_ratio = 0.0;
  for (std::uint64_t seed = 1; seed <= 14; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 8;
    params.T = 5;
    params.machines = 2;
    params.horizon = 30;
    const Instance instance = generate_unit(params, /*max_window=*/9);

    const ExactIseResult exact = solve_exact_ise(instance);
    if (!exact.solved || !exact.feasible) continue;
    const BaselineResult lazy = BenderUnitLazyBinning().solve(instance);

    IseSolverOptions options;
    options.mm = std::make_shared<UnitEdfMM>();
    const IseSolveResult ours = solve_ise(instance, options);

    bool verified = verify_ise(instance, exact.schedule).ok();
    std::string lazy_cell = "-";
    double lazy_ratio = 0.0;
    if (lazy.feasible) {
      verified = verified && verify_ise(instance, lazy.schedule).ok();
      lazy_cell = std::to_string(lazy.schedule.num_calibrations());
      lazy_ratio = static_cast<double>(lazy.schedule.num_calibrations()) /
                   static_cast<double>(exact.optimal_calibrations);
      worst_lazy_ratio = std::max(worst_lazy_ratio, lazy_ratio);
    }
    std::string ours_cell = "-";
    if (ours.feasible) {
      verified = verified && verify_ise(instance, ours.schedule).ok();
      ours_cell = std::to_string(ours.total_calibrations);
    }
    bench.check("verified-seed-" + std::to_string(seed), verified);
    table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(calibration_lower_bound(instance))
        .cell(exact.optimal_calibrations)
        .cell(lazy_cell)
        .cell(lazy.feasible ? format_double(lazy_ratio, 2) : std::string("-"))
        .cell(ours_cell)
        .cell(verified);
  }
  bench.print_table("comparison", "unit instances (T=5, m=2, windows <= 9)");

  // --- single-machine regime: Bender et al.'s first algorithm is optimal
  // whenever a 1-machine schedule exists; measure how close the
  // reconstruction gets there.
  Table& single = bench.table(
      "single", {"seed", "n", "exact(m=1)", "bender-lazy", "optimal?"});
  int optimal_count = 0, measured = 0;
  for (std::uint64_t seed = 30; seed <= 45; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 6;
    params.T = 5;
    params.machines = 1;
    params.horizon = 30;
    const Instance instance = generate_unit(params, 9);
    const ExactIseResult exact = solve_exact_ise(instance);
    if (!exact.solved || !exact.feasible) continue;
    const BaselineResult lazy = BenderUnitLazyBinning().solve(instance);
    if (!lazy.feasible || !verify_ise(instance, lazy.schedule).ok()) continue;
    ++measured;
    const bool optimal =
        lazy.schedule.num_calibrations() == exact.optimal_calibrations;
    if (optimal) ++optimal_count;
    single.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(exact.optimal_calibrations)
        .cell(lazy.schedule.num_calibrations())
        .cell(optimal);
  }
  bench.print_table("single", "single-machine regime (their optimality case)");
  std::cout << "reconstruction optimal on " << optimal_count << "/" << measured
            << " single-machine instances\n";
  bench.metric("worst_lazy_ratio", worst_lazy_ratio);
  bench.metric("single_machine_optimal", optimal_count);
  bench.metric("single_machine_measured", measured);
  bench.note(
      "worst lazy-binning ratio measured: " +
      format_double(worst_lazy_ratio, 2) +
      " (Bender et al. prove 2.0 for their exact algorithm; ours is a "
      "reconstruction)\nThe general solver's counts include its "
      "worst-case-driven constant factors; on unit jobs the specialized "
      "greedy is the right tool, exactly as the paper positions it.");
  return bench.finish();
}

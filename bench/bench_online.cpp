// Experiment E20 — online arrival scheduling: empirical competitive
// ratios of the event-driven EDF-into-calibrations heuristic against the
// clairvoyant exact optimum.
//
// For each arrival-trace family (online-poisson, online-burst,
// online-drip) this sweeps small instances, replays each through the
// online simulator with `online-edf` (which only sees jobs as they
// arrive), solves the same instance offline with the exact layered
// state-space engine (which sees everything up front), and reports the
// cost ratio on instances both solved. The drip family is adversarial —
// zero-slack jobs revealed one at a time — so its ratio bounds what
// laziness costs when it buys nothing.
//
// Self-checks: the online heuristic never beats the exact optimum, every
// feasible schedule is verifier-clean, and replaying a trace twice
// produces byte-identical delta streams (the determinism contract the
// subscribe front ends rely on).
#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "online/online.hpp"
#include "runtime/registry.hpp"
#include "service/protocol.hpp"
#include "util/table.hpp"

namespace {

using namespace calisched;

enum class Family { kPoisson, kBurst, kDrip };

struct FamilyCase {
  Family family;
  const char* name;
};

constexpr FamilyCase kFamilies[] = {
    {Family::kPoisson, "online-poisson"},
    {Family::kBurst, "online-burst"},
    {Family::kDrip, "online-drip"},
};

Instance make_instance(Family family, const GenParams& params) {
  switch (family) {
    case Family::kPoisson:
      return generate_online_poisson(params);
    case Family::kBurst:
      return generate_online_burst(params, 3);
    case Family::kDrip:
      return generate_online_drip(params);
  }
  return Instance{};
}

/// The NDJSON lines a subscribe client would receive for this delta
/// stream; comparing the serialized text is the byte-identity check.
std::string delta_stream_text(const OnlineResult& result, bool unit_model) {
  std::string out;
  for (const ScheduleDelta& delta : result.deltas) {
    out += dump_response(make_delta_response(JsonValue(), delta.time,
                                             delta.calibrations, delta.jobs,
                                             unit_model));
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E20", "online EDF vs clairvoyant exact optimum",
                     argc, argv);
  const std::size_t count =
      static_cast<std::size_t>(bench.args().get_int("count", 16));

  const AlgorithmRegistry& registry = AlgorithmRegistry::builtin();
  const Algorithm* exact = registry.find("exact-ise");
  const Algorithm* online = registry.find("online-edf");

  Table& quality = bench.table(
      "quality", {"family", "instances", "exact-solved", "online-solved",
                  "mean-ratio", "max-ratio"});

  bool all_verified = true;
  bool online_never_beats_exact = true;
  bool replay_deterministic = true;
  bool online_capability_declared =
      online != nullptr && online->capabilities().supports_online;
  for (const FamilyCase& family : kFamilies) {
    std::vector<std::int64_t> exact_cost(count, -1);
    std::vector<std::int64_t> online_cost(count, -1);
    std::mutex mutex;
    bench.sweep(count, [&](std::size_t i) {
      GenParams params;
      params.seed = 0xE20 + i * 211 + static_cast<std::size_t>(family.family);
      params.n = 6;
      params.T = 8;
      params.machines = 2;
      params.horizon = 60;
      params.max_proc = 6;
      const Instance instance = make_instance(family.family, params);

      const ArrivalTrace trace = ArrivalTrace::from_instance(instance);
      const OnlineResult first = simulate_trace("online-edf", trace);
      const OnlineResult second = simulate_trace("online-edf", trace);
      const bool unit_model = trace.cal.empty();
      const bool identical = delta_stream_text(first, unit_model) ==
                             delta_stream_text(second, unit_model);
      const RunResult exact_result = exact->run(instance);

      std::lock_guard<std::mutex> lock(mutex);
      if (!identical) replay_deterministic = false;
      if (exact_result.feasible) {
        exact_cost[i] = exact_result.total_cost;
        if (!exact_result.verified) all_verified = false;
      }
      if (first.feasible) {
        online_cost[i] = first.schedule.total_cost();
      }
    });
    std::size_t exact_solved = 0;
    std::size_t online_solved = 0;
    double ratio_sum = 0.0;
    double ratio_max = 0.0;
    std::size_t both = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (exact_cost[i] >= 0) ++exact_solved;
      if (online_cost[i] >= 0) ++online_solved;
      if (exact_cost[i] > 0 && online_cost[i] > 0) {
        if (online_cost[i] < exact_cost[i]) online_never_beats_exact = false;
        const double ratio = static_cast<double>(online_cost[i]) /
                             static_cast<double>(exact_cost[i]);
        ratio_sum += ratio;
        ratio_max = std::max(ratio_max, ratio);
        ++both;
      }
    }
    quality.row()
        .cell(family.name)
        .cell(static_cast<std::int64_t>(count))
        .cell(static_cast<std::int64_t>(exact_solved))
        .cell(static_cast<std::int64_t>(online_solved))
        .cell(both > 0 ? ratio_sum / static_cast<double>(both) : 0.0, 3)
        .cell(ratio_max, 3);
    const std::string suffix = std::string("_") + family.name;
    bench.metric("competitive_ratio_mean" + suffix,
                 both > 0 ? ratio_sum / static_cast<double>(both) : 0.0);
    bench.metric("competitive_ratio_max" + suffix, ratio_max);
    bench.metric("online_solved" + suffix,
                 static_cast<double>(online_solved));
  }
  bench.print_table("quality", "online-edf vs exact-ise (calibrations)");

  bench.check("online_capability_declared", online_capability_declared);
  bench.check("all_results_verified", all_verified);
  bench.check("online_never_beats_exact", online_never_beats_exact);
  bench.check("replay_deterministic", replay_deterministic);
  bench.note(
      "Lazy opening keeps the steady-state Poisson stream close to the "
      "clairvoyant optimum: most arrivals ride calibrations opened for an "
      "earlier urgent job. Bursts cost more — the doubling escalation "
      "opens capacity only after EDF packing fails, so a wave of "
      "short-window jobs pays for calibrations a clairvoyant packer would "
      "have merged. The zero-slack drip is the adversarial regime: every "
      "arrival forces an immediate opening and the ratio approaches the "
      "per-job worst case. Replaying any trace twice yields byte-identical "
      "delta streams, which is the contract the subscribe sessions stream "
      "to clients on both front ends.");
  return bench.finish();
}

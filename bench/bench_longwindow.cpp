// Experiment E1 — Theorem 12: the long-window pipeline.
//
// Sweeps randomized long-window instances and reports, per (n, seed):
// the LP objective (a lower bound on the TISE optimum on 3m machines),
// the rounded and final calibration counts, machines used vs the 18m
// budget, and the realized ratio against the instance's combinatorial
// calibration lower bound. The internal chain checked per row:
//   rounded <= 2 * LP_objective   and   total = 2 * rounded <= 4 * LP.
// A second table compares against the *exact* ISE optimum on tiny
// instances, where Theorem 12's <= 12 C* ceiling is directly checkable.
//
// Instances are solved in parallel on the shared thread pool; each task
// owns its row.
#include "baselines/calibration_bounds.hpp"
#include "baselines/exact_ise.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "longwin/long_pipeline.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("E1", "long-window pipeline (Theorem 12)", argc, argv);

  struct Case {
    int n;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (const int n : {6, 10, 14, 18, 24}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) cases.push_back({n, seed});
  }

  struct Row {
    Case c;
    bool ok = false;
    double lp = 0;
    std::size_t rounded = 0, total = 0;
    int machines_used = 0, m = 0;
    std::int64_t lb = 0;
    bool verified = false, chain_ok = false, machines_ok = false;
  };
  std::vector<Row> rows(cases.size());
  bench.sweep(cases.size(), [&](std::size_t i) {
    GenParams params;
    params.seed = cases[i].seed;
    params.n = cases[i].n;
    params.T = 10;
    params.machines = 2;
    params.horizon = 10 * params.T;
    params.max_proc = 10;
    const Instance instance = generate_long_window(params);
    const LongWindowResult result = solve_long_window(instance);
    Row& row = rows[i];
    row.c = cases[i];
    row.m = instance.machines;
    row.lb = calibration_lower_bound(instance);
    if (!result.feasible) return;
    row.ok = true;
    row.lp = result.telemetry.lp_objective;
    row.rounded = result.telemetry.rounded_calibrations;
    row.total = result.telemetry.total_calibrations;
    row.machines_used = result.schedule.machines_used();
    row.verified = verify_tise(instance, result.schedule).ok();
    row.chain_ok = static_cast<double>(row.rounded) <= 2.0 * row.lp + 1e-6 &&
                   row.total == 2 * row.rounded;
    row.machines_ok = result.schedule.machines <= 18 * instance.machines;
  });

  Table& table = bench.table(
      "sweep", {"n", "seed", "LP-obj", "rounded", "total-cals", "cals/LB",
                "machines", "<=18m", "chain<=4xLP", "verified"});
  for (const Row& row : rows) {
    if (!row.ok) continue;
    bench.check("row-n" + std::to_string(row.c.n) + "-seed" +
                    std::to_string(row.c.seed),
                row.verified && row.chain_ok && row.machines_ok);
    table.row()
        .cell(std::int64_t{row.c.n})
        .cell(static_cast<std::int64_t>(row.c.seed))
        .cell(row.lp, 2)
        .cell(row.rounded)
        .cell(row.total)
        .cell(static_cast<double>(row.total) / static_cast<double>(row.lb), 2)
        .cell(std::int64_t{row.machines_used})
        .cell(row.machines_ok)
        .cell(row.chain_ok)
        .cell(row.verified);
  }
  bench.print_table("sweep", "long-window sweep (T=10, m=2, windows 2T..6T)");

  // --- tiny instances vs the exact optimum ----------------------------------
  Table& tiny = bench.table("tiny", {"seed", "n", "exact-OPT", "pipeline",
                                     "ratio", "<=12xOPT", "verified"});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 5;
    params.T = 6;
    params.machines = 1;
    params.horizon = 36;
    params.max_proc = 5;
    const Instance instance = generate_long_window(params, 2, 4);
    const ExactIseResult exact = solve_exact_ise(instance);
    if (!exact.solved || !exact.feasible) continue;
    const LongWindowResult pipeline = solve_long_window(instance);
    if (!pipeline.feasible) continue;
    const double ratio =
        static_cast<double>(pipeline.telemetry.total_calibrations) /
        static_cast<double>(exact.optimal_calibrations);
    bench.check("tiny-seed" + std::to_string(seed), ratio <= 12.0 + 1e-9);
    tiny.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(exact.optimal_calibrations)
        .cell(pipeline.telemetry.total_calibrations)
        .cell(ratio, 2)
        .cell(ratio <= 12.0 + 1e-9)
        .cell(verify_tise(instance, pipeline.schedule).ok());
  }
  bench.print_table("tiny", "tiny instances: pipeline vs exact ISE optimum");
  bench.note(
      "Theorem 12 ceiling: 12 x OPT calibrations on 18m machines; "
      "measured ratios are expected well below it.");
  return bench.finish();
}

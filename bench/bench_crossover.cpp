// Experiment E10 — crossover curves.
//
// The paper's introduction motivates calibration sharing; where it pays
// depends on two knobs the theory identifies:
//   * window slack (tight windows -> forced spread -> per-job is fine;
//     loose windows -> jobs can be herded into few calibrations), and
//   * work density over the horizon (sparse horizons punish the
//     always-calibrated policy; dense ones favor it).
// This bench sweeps both knobs and prints the calibration counts of the
// combined solver (paper-faithful and optimized) against the baselines,
// exposing the crossover points. Series are deterministic (fixed seeds,
// averaged over 3 instances per point).
#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "solver/ise_solver.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace {

using namespace calisched;

/// Builds n jobs whose windows have `slack` extra time units beyond p.
Instance slack_instance(std::uint64_t seed, int n, Time T, int machines,
                        Time horizon, Time slack) {
  Rng rng(seed);
  Instance instance;
  instance.machines = machines;
  instance.T = T;
  for (JobId j = 0; j < n; ++j) {
    const Time proc = rng.uniform_int(1, std::max<Time>(1, T / 2));
    const Time window = proc + slack;
    const Time release = rng.uniform_int(0, std::max<Time>(0, horizon - window));
    instance.jobs.push_back({j, release, release + window, proc});
  }
  return instance;
}

struct PolicyCounts {
  bool ok = false;
  std::size_t paper = 0, optimized = 0, per_job = 0;
  std::size_t saturate = 0, lazy = 0;
  bool saturate_ok = false, lazy_ok = false;
  std::int64_t lb = 0;
};

PolicyCounts run_policies(const Instance& instance) {
  PolicyCounts counts;
  counts.lb = calibration_lower_bound(instance);
  const IseSolveResult paper = solve_ise(instance);
  if (!paper.feasible || !verify_ise(instance, paper.schedule).ok()) {
    return counts;
  }
  IseSolverOptions optimized_options;
  optimized_options.long_window.adaptive_mirror = true;
  optimized_options.long_window.prune_empty_calibrations = true;
  optimized_options.short_window.trim_unused_calibrations = true;
  const IseSolveResult optimized = solve_ise(instance, optimized_options);
  if (!optimized.feasible || !verify_ise(instance, optimized.schedule).ok()) {
    return counts;
  }
  counts.ok = true;
  counts.paper = paper.total_calibrations;
  counts.optimized = optimized.total_calibrations;
  counts.per_job = PerJobCalibration().solve(instance).schedule.num_calibrations();
  const BaselineResult saturate = SaturateCalibration().solve(instance);
  counts.saturate_ok = saturate.feasible;
  if (saturate.feasible) {
    counts.saturate = saturate.schedule.num_calibrations();
  }
  const BaselineResult lazy = GreedyLazyIse().solve(instance);
  counts.lazy_ok = lazy.feasible && verify_ise(instance, lazy.schedule).ok();
  if (counts.lazy_ok) counts.lazy = lazy.schedule.num_calibrations();
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E10", "crossover curves (who wins where)", argc, argv);

  // ---- knob 1: window slack ---------------------------------------------------
  Table& slack_table = bench.table(
      "slack", {"slack/T", "LB", "paper", "optimized", "greedy-lazy",
                "per-job", "saturate", "optimized-winner"});
  const Time T = 10;
  for (const Time slack : {Time{2}, Time{5}, Time{10}, Time{20}, Time{40}}) {
    std::size_t paper = 0, optimized = 0, per_job = 0, saturate = 0, lazy = 0;
    std::int64_t lb = 0;
    int samples = 0, lazy_samples = 0;
    bool saturate_all = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance =
          slack_instance(seed * 11, /*n=*/30, T, /*machines=*/3,
                         /*horizon=*/12 * T, slack);
      const PolicyCounts counts = run_policies(instance);
      if (!counts.ok) continue;
      ++samples;
      paper += counts.paper;
      optimized += counts.optimized;
      per_job += counts.per_job;
      lb += counts.lb;
      if (counts.saturate_ok) {
        saturate += counts.saturate;
      } else {
        saturate_all = false;
      }
      if (counts.lazy_ok) {
        lazy += counts.lazy;
        ++lazy_samples;
      }
    }
    if (samples == 0) continue;
    const std::size_t opt_avg = optimized / samples;
    const std::size_t pj_avg = per_job / samples;
    const char* winner =
        opt_avg <= pj_avg && (!saturate_all || opt_avg <= saturate / samples)
            ? "optimized"
        : saturate_all && saturate / samples < pj_avg ? "saturate"
                                                      : "per-job";
    slack_table.row()
        .cell(static_cast<double>(slack) / static_cast<double>(T), 1)
        .cell(lb / samples)
        .cell(paper / samples)
        .cell(opt_avg)
        .cell(lazy_samples ? std::to_string(lazy / lazy_samples)
                           : std::string("-"))
        .cell(pj_avg)
        .cell(saturate_all ? std::to_string(saturate / samples)
                           : std::string("(infeasible)"))
        .cell(winner);
  }
  bench.print_table("slack",
                    "window-slack sweep (n=30, T=10, m=3, horizon=12T; avg "
                    "of 3 seeds)");

  // ---- knob 2: horizon (work density) ----------------------------------------
  Table& density_table = bench.table(
      "density", {"horizon/T", "LB", "optimized", "per-job", "saturate",
                  "optimized-winner"});
  for (const Time horizon_factor :
       {Time{4}, Time{8}, Time{16}, Time{32}, Time{64}}) {
    std::size_t optimized = 0, per_job = 0, saturate = 0;
    std::int64_t lb = 0;
    int samples = 0;
    bool saturate_all = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance =
          slack_instance(seed * 13 + 7, /*n=*/30, T, /*machines=*/3,
                         horizon_factor * T, /*slack=*/15);
      const PolicyCounts counts = run_policies(instance);
      if (!counts.ok) continue;
      ++samples;
      optimized += counts.optimized;
      per_job += counts.per_job;
      lb += counts.lb;
      if (counts.saturate_ok) {
        saturate += counts.saturate;
      } else {
        saturate_all = false;
      }
    }
    if (samples == 0) continue;
    const std::size_t opt_avg = optimized / samples;
    const std::size_t pj_avg = per_job / samples;
    const char* winner =
        opt_avg <= pj_avg && (!saturate_all || opt_avg <= saturate / samples)
            ? "optimized"
        : saturate_all && saturate / samples < pj_avg ? "saturate"
                                                      : "per-job";
    density_table.row()
        .cell(static_cast<std::int64_t>(horizon_factor))
        .cell(lb / samples)
        .cell(opt_avg)
        .cell(pj_avg)
        .cell(saturate_all ? std::to_string(saturate / samples)
                           : std::string("(infeasible)"))
        .cell(winner);
  }
  bench.print_table("density",
                    "work-density sweep (n=30, T=10, m=3, slack=1.5T; avg "
                    "of 3 seeds)");
  bench.note(
      "Shape to expect: saturate wins only the densest horizons; per-job "
      "wins very tight windows; the solver's advantage grows with slack "
      "(more herding freedom) and with horizon length (idle stretches "
      "saturate must still pay for).");
  return bench.finish();
}

// Shared experiment harness for the bench_* binaries.
//
// Every experiment follows the same shape: print a banner, sweep a family
// of generated instances (usually in parallel on the shared thread pool),
// accumulate rows into one or more tables, assert self-checks, and close
// with an interpretation note. The harness owns that boilerplate so each
// bench file reduces to its instance family and metric definitions, and —
// uniformly across binaries — emits a machine-readable JSON record of
// everything it printed.
//
// Flags (parsed from main's argc/argv):
//   --json=PATH   write the JSON record to PATH ("-" for stdout; with
//                 stdout as the target the human-readable banner/tables
//                 move to stderr so stdout is pure JSON)
//
// JSON record schema:
//   {"bench": ID, "title": ..., "elapsed_ns": N,
//    "tables": {key: {"title": ..., "header": [...], "rows": [[...]]}},
//    "metrics": {name: number}, "checks": {name: bool},
//    "notes": [...], "trace": {...}}
//
// Self-checks gate the exit code: finish() returns 1 if any check failed,
// so ctest-style wrappers catch regressions without parsing tables.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "lp/perf_counters.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace calisched {

class BenchHarness {
 public:
  /// Prints the "ID: title" banner immediately.
  BenchHarness(std::string id, std::string title, int argc, char** argv);

  [[nodiscard]] const CliArgs& args() const noexcept { return args_; }

  /// Root trace for the experiment; pass into pipeline options to capture
  /// stage telemetry in the JSON record.
  [[nodiscard]] TraceContext& trace() noexcept { return trace_; }

  /// Registers (or retrieves) a table under `key`. The table prints to
  /// stdout when print_table() is called — or at finish(), in registration
  /// order, if never printed explicitly.
  Table& table(const std::string& key, std::vector<std::string> header);

  /// Prints a registered table with `title` (recorded into the JSON too).
  void print_table(const std::string& key, const std::string& title);

  /// Runs `fn(i)` for i in [0, count) on the shared thread pool, recording
  /// a "sweep" span and the case count in the trace.
  template <typename Fn>
  void sweep(std::size_t count, Fn&& fn) {
    TraceSpan span(&trace_, "sweep");
    parallel_for(default_pool(), count, fn);
    span.stop();
    trace_.add("sweep.cases", static_cast<std::int64_t>(count));
  }

  /// Records a named scalar into the JSON record (and the trace).
  void metric(const std::string& name, double value);

  /// Records one row of the shared "lp_counters" table from an LP
  /// perf-counter delta (lp_perf_snapshot() before/after a timed region)
  /// plus the wall time of that region. With `record_metrics`, the
  /// deterministic work counts (pivots, etas applied, bytes/pivot,
  /// workspace reuses, buffer growths) are also registered as gated
  /// "<label>_*" metrics, while the derived rates get "_per_s" names the
  /// regression checker treats as advisory — counts reproduce across
  /// machines, rates do not.
  void lp_counters(const std::string& label, const LpPerfCounters& delta,
                   double elapsed_ms, bool record_metrics = true);

  /// Records a self-check. A failed check prints immediately and makes
  /// finish() return 1.
  void check(const std::string& name, bool ok);

  /// Prints a closing interpretation paragraph and records it.
  void note(const std::string& text);

  /// Flushes unprinted tables, reports failed checks, writes the JSON
  /// record when --json was given. Returns the process exit code.
  [[nodiscard]] int finish();

 private:
  struct NamedTable {
    std::string key;
    std::string title;
    Table table;
    bool printed = false;
  };

  /// Human-readable output stream: stdout normally, stderr when the JSON
  /// record targets stdout (keeps `bench --json=- | jq` workable).
  [[nodiscard]] std::ostream& human() const noexcept;

  std::string id_;
  std::string title_;
  CliArgs args_;
  bool json_to_stdout_ = false;  ///< declared after args_: derived from it
  TraceContext trace_;
  std::chrono::steady_clock::time_point start_;
  /// deque, not vector: table() hands out long-lived Table& references, so
  /// registering a later table must not relocate earlier entries.
  std::deque<NamedTable> tables_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, bool>> checks_;
  std::vector<std::string> notes_;
  bool failed_ = false;
};

}  // namespace calisched

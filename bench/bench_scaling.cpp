// Experiment E8 — scalability.
//
// Timing series for the components the paper's Theorem 1 multiplies
// together: the TISE LP build+solve (dominant), the rounding + EDF steps,
// the short-window MM reduction, and the combined solver; plus batch
// throughput over the thread pool (instances solved in parallel).
//
// Timing protocol: each configuration is solved once to pick a repetition
// count that fits a ~300 ms budget, then re-run best-of-reps on the steady
// clock. Best-of (not mean) is the standard estimator for a quiet machine;
// the JSON record keeps the rep count alongside each row.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "baselines/baseline.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "longwin/long_pipeline.hpp"
#include "longwin/tise_lp.hpp"
#include "lp/perf_counters.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "mm/mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "solver/ise_solver.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace calisched;

/// Keeps results observable so the optimizer cannot delete timed work.
volatile double g_sink = 0.0;

GenParams scaling_params(int n, std::uint64_t seed) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 10;
  params.machines = 2;
  params.horizon = 10 * params.T;
  params.max_proc = 10;
  return params;
}

struct Timing {
  double best_ms = std::numeric_limits<double>::infinity();
  int reps = 0;
};

/// One calibration call sizes the repetition count for a ~300 ms budget,
/// then best-of-reps.
template <typename Fn>
Timing measure(Fn&& fn) {
  constexpr double kBudgetMs = 300.0;
  const auto once = [&] {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                   .count()) /
           1e6;
  };
  Timing timing;
  const double first = once();
  timing.best_ms = first;
  const int reps = first > 0.0
                       ? static_cast<int>(std::clamp(kBudgetMs / first, 1.0, 25.0))
                       : 25;
  for (int i = 0; i < reps; ++i) timing.best_ms = std::min(timing.best_ms, once());
  timing.reps = reps + 1;
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E8", "Scalability: per-component timing series", argc,
                     argv);

  Table& table = bench.table(
      "scaling", {"series", "n", "reps", "best-ms", "detail"});
  bool all_finite = true;
  const auto record = [&](const std::string& series, int n,
                          const Timing& timing, const std::string& detail) {
    all_finite = all_finite && std::isfinite(timing.best_ms);
    table.row().cell(series).cell(n).cell(timing.reps).cell(timing.best_ms, 3)
        .cell(detail.empty() ? "-" : detail);
  };

  // --- TISE LP build+solve (the dominant long-window cost) ---------------
  for (const int n : {6, 12, 18, 24}) {
    const Instance instance = generate_long_window(scaling_params(n, 42));
    TiseFractional fractional;
    const LpPerfCounters lp_before = lp_perf_snapshot();
    const auto lp_start = std::chrono::steady_clock::now();
    const Timing timing = measure([&] {
      fractional = solve_tise_lp(instance, 3 * instance.machines);
      g_sink = fractional.objective;
    });
    const double lp_total_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - lp_start)
                .count()) /
        1e6;
    // Rows only, no gated metrics: measure() picks its repetition count
    // from the first timing, so the *totals* here are machine-dependent
    // even though per-solve work is deterministic. The rates are what the
    // sweep is for — how pivots/s holds up as n grows.
    const LpPerfCounters lp_delta = lp_perf_snapshot() - lp_before;
    bench.lp_counters("tise_n" + std::to_string(n), lp_delta, lp_total_ms,
                      /*record_metrics=*/false);
    if (n == 24 && lp_total_ms > 0.0) {
      bench.metric("tise_n24_pivots_per_s",
                   static_cast<double>(lp_delta.pivots) /
                       (lp_total_ms / 1e3));
    }
    record("tise_lp_solve", n, timing,
           "pivots=" + std::to_string(fractional.pivots) +
               " lp_rows=" + std::to_string(fractional.lp_rows));
  }

  // --- full long-window pipeline (LP + rounding + EDF) -------------------
  for (const int n : {6, 12, 18, 24}) {
    const Instance instance = generate_long_window(scaling_params(n, 43));
    const Timing timing = measure([&] {
      const LongWindowResult result = solve_long_window(instance);
      g_sink = static_cast<double>(result.telemetry.total_calibrations);
    });
    record("long_pipeline", n, timing, "");
  }

  // --- short-window pipeline with the greedy MM --------------------------
  for (const int n : {20, 60, 120, 240}) {
    const Instance instance = generate_short_window(scaling_params(n, 44));
    const GreedyEdfMM mm;
    const Timing timing = measure([&] {
      const ShortWindowResult result = solve_short_window(instance, mm);
      g_sink = static_cast<double>(result.telemetry.total_calibrations);
    });
    record("short_pipeline_greedy", n, timing, "");
  }

  // --- end-to-end solver on mixed instances ------------------------------
  for (const int n : {8, 16, 24}) {
    const Instance instance = generate_mixed(scaling_params(n, 45), 0.5);
    const Timing timing = measure([&] {
      const IseSolveResult result = solve_ise(instance);
      g_sink = static_cast<double>(result.total_calibrations);
    });
    record("end_to_end", n, timing, "");
  }

  // --- batch throughput: thread pool vs serial loop ----------------------
  double parallel_items_per_s = 0.0;
  double serial_items_per_s = 0.0;
  for (const std::size_t batch : {std::size_t{8}, std::size_t{32}}) {
    std::vector<Instance> instances;
    instances.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      instances.push_back(generate_mixed(scaling_params(10, 100 + i), 0.5));
    }
    const Timing parallel_timing = measure([&] {
      parallel_for(default_pool(), batch, [&](std::size_t i) {
        const IseSolveResult result = solve_ise(instances[i]);
        g_sink = static_cast<double>(result.total_calibrations);
      });
    });
    const Timing serial_timing = measure([&] {
      for (std::size_t i = 0; i < batch; ++i) {
        const IseSolveResult result = solve_ise(instances[i]);
        g_sink = static_cast<double>(result.total_calibrations);
      }
    });
    parallel_items_per_s =
        static_cast<double>(batch) / (parallel_timing.best_ms / 1e3);
    serial_items_per_s =
        static_cast<double>(batch) / (serial_timing.best_ms / 1e3);
    record("batch_parallel", static_cast<int>(batch), parallel_timing,
           "items/s=" + format_double(parallel_items_per_s, 0));
    record("batch_serial", static_cast<int>(batch), serial_timing,
           "items/s=" + format_double(serial_items_per_s, 0));
  }

  // --- MM engines --------------------------------------------------------
  for (const int n : {8, 16, 24}) {
    GenParams params = scaling_params(n, 47);
    params.max_proc = 8;
    const Instance instance = generate_short_window(params);
    const LpRoundingMM mm;
    const Timing timing = measure([&] {
      const MMResult result = mm.minimize(instance);
      g_sink = static_cast<double>(result.schedule.machines);
    });
    record("lp_rounding_mm", n, timing, "");
  }
  for (const int n : {6, 9, 12}) {
    GenParams params = scaling_params(n, 46);
    params.max_proc = 6;
    const Instance instance = generate_short_window(params);
    const ExactMM mm;
    const Timing timing = measure([&] {
      const MMResult result = mm.minimize(instance);
      g_sink = static_cast<double>(result.schedule.machines);
    });
    record("exact_mm", n, timing, "");
  }

  // --- greedy-lazy baseline ----------------------------------------------
  for (const int n : {20, 80, 160}) {
    GenParams params = scaling_params(n, 48);
    params.machines = 8;             // roomy enough that the heuristic
    params.horizon = 40 * params.T;  // actually completes its schedule
    const Instance instance = generate_mixed(params, 0.5);
    const GreedyLazyIse heuristic;
    bool feasible = false;
    const Timing timing = measure([&] {
      const BaselineResult result = heuristic.solve(instance);
      feasible = result.feasible;
      g_sink = result.feasible ? 1.0 : 0.0;
    });
    record("greedy_lazy_ise", n, timing,
           feasible ? "feasible" : "infeasible");
  }

  bench.print_table("scaling",
                    "best-of-reps wall time per component (T=10, m=2)");
  bench.print_table("lp_counters",
                    "TISE LP work counters per sweep point (all reps)");
  bench.metric("batch32_parallel_items_per_s", parallel_items_per_s);
  bench.metric("batch32_serial_items_per_s", serial_items_per_s);
  bench.metric("batch32_parallel_speedup",
               serial_items_per_s > 0.0
                   ? parallel_items_per_s / serial_items_per_s
                   : 0.0);
  bench.check("all timings finite", all_finite);
  // 4 tise + 4 long + 4 short + 3 end-to-end + 4 batch (2 sizes x
  // parallel/serial) + 3 lp-rounding + 3 exact + 3 greedy-lazy.
  bench.check("every series recorded", table.row_count() == 28);
  bench.note(
      "The TISE LP dominates long-window cost and the series bounds how "
      "instance size n translates into wall time for each pipeline stage; "
      "batch rows compare thread-pool throughput against a serial loop over "
      "the same instances.");
  return bench.finish();
}

// Experiment E8 — scalability (google-benchmark).
//
// Timing series for the components the paper's Theorem 1 multiplies
// together: the TISE LP build+solve (dominant), the rounding + EDF steps,
// the short-window MM reduction, and the combined solver; plus batch
// throughput over the thread pool (instances solved in parallel).
#include <benchmark/benchmark.h>

#include "baselines/baseline.hpp"
#include "gen/generators.hpp"
#include "longwin/long_pipeline.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "longwin/tise_lp.hpp"
#include "mm/mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "solver/ise_solver.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace calisched;

GenParams scaling_params(int n, std::uint64_t seed) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 10;
  params.machines = 2;
  params.horizon = 10 * params.T;
  params.max_proc = 10;
  return params;
}

void BM_TiseLpSolve(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance = generate_long_window(scaling_params(n, 42));
  std::int64_t pivots = 0;
  int rows = 0;
  for (auto _ : state) {
    const TiseFractional fractional = solve_tise_lp(instance, 3 * instance.machines);
    benchmark::DoNotOptimize(fractional.objective);
    pivots = fractional.pivots;
    rows = fractional.lp_rows;
  }
  state.counters["pivots"] = static_cast<double>(pivots);
  state.counters["lp_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_TiseLpSolve)->Arg(6)->Arg(12)->Arg(18)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_LongPipeline(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance = generate_long_window(scaling_params(n, 43));
  for (auto _ : state) {
    const LongWindowResult result = solve_long_window(instance);
    benchmark::DoNotOptimize(result.telemetry.total_calibrations);
  }
}
BENCHMARK(BM_LongPipeline)->Arg(6)->Arg(12)->Arg(18)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_ShortPipelineGreedy(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance = generate_short_window(scaling_params(n, 44));
  const GreedyEdfMM mm;
  for (auto _ : state) {
    const ShortWindowResult result = solve_short_window(instance, mm);
    benchmark::DoNotOptimize(result.telemetry.total_calibrations);
  }
}
BENCHMARK(BM_ShortPipelineGreedy)->Arg(20)->Arg(60)->Arg(120)->Arg(240)
    ->Unit(benchmark::kMicrosecond);

void BM_EndToEnd(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance = generate_mixed(scaling_params(n, 45), 0.5);
  for (auto _ : state) {
    const IseSolveResult result = solve_ise(instance);
    benchmark::DoNotOptimize(result.total_calibrations);
  }
}
BENCHMARK(BM_EndToEnd)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

/// Batch throughput: many independent instances across the thread pool,
/// the execution mode the experiment harness itself uses.
void BM_BatchSolveParallel(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<Instance> instances;
  instances.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    instances.push_back(
        generate_mixed(scaling_params(10, 100 + i), 0.5));
  }
  for (auto _ : state) {
    parallel_for(default_pool(), batch, [&](std::size_t i) {
      const IseSolveResult result = solve_ise(instances[i]);
      benchmark::DoNotOptimize(result.total_calibrations);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BatchSolveParallel)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchSolveSerial(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<Instance> instances;
  instances.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    instances.push_back(
        generate_mixed(scaling_params(10, 100 + i), 0.5));
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      const IseSolveResult result = solve_ise(instances[i]);
      benchmark::DoNotOptimize(result.total_calibrations);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BatchSolveSerial)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_LpRoundingMm(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  GenParams params = scaling_params(n, 47);
  params.max_proc = 8;
  const Instance instance = generate_short_window(params);
  const LpRoundingMM mm;
  for (auto _ : state) {
    const MMResult result = mm.minimize(instance);
    benchmark::DoNotOptimize(result.schedule.machines);
  }
}
BENCHMARK(BM_LpRoundingMm)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyLazyIse(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  GenParams params = scaling_params(n, 48);
  params.machines = 8;                 // roomy enough that the heuristic
  params.horizon = 40 * params.T;      // actually completes its schedule
  const Instance instance = generate_mixed(params, 0.5);
  const GreedyLazyIse heuristic;
  bool feasible = false;
  for (auto _ : state) {
    const BaselineResult result = heuristic.solve(instance);
    feasible = result.feasible;
    benchmark::DoNotOptimize(result.feasible);
  }
  state.counters["feasible"] = feasible ? 1.0 : 0.0;
}
BENCHMARK(BM_GreedyLazyIse)->Arg(20)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactMm(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  GenParams params = scaling_params(n, 46);
  params.max_proc = 6;
  const Instance instance = generate_short_window(params);
  const ExactMM mm;
  for (auto _ : state) {
    const MMResult result = mm.minimize(instance);
    benchmark::DoNotOptimize(result.schedule.machines);
  }
}
BENCHMARK(BM_ExactMm)->Arg(6)->Arg(9)->Arg(12)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

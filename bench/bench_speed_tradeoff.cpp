// Experiment E2 — Theorem 14: trading machines for speed (Lemma 13).
//
// Runs the Theorem-12 pipeline and then the machines->speed transform and
// checks, per instance: the target uses at most the original m machines,
// runs at speed 2c (= 36 when the pipeline's 18m allotment is full), emits
// no more calibrations than the source, and stays verifier-clean with
// exact tick arithmetic.
#include <iostream>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "longwin/long_pipeline.hpp"
#include "longwin/speed_transform.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("E2", "machines -> speed transform (Theorem 14 / Lemma 13)",
                     argc, argv);

  Table& table = bench.table(
      "transform", {"seed", "n", "m", "src-machines", "src-cals",
                    "dst-machines", "speed", "dst-cals", "cals<=src",
                    "verified"});
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 8 + static_cast<int>(seed % 8);
    params.T = 10;
    params.machines = 1 + static_cast<int>(seed % 2);
    params.horizon = 8 * params.T;
    params.max_proc = 10;
    const Instance instance = generate_long_window(params);

    const LongWindowResult slow = solve_long_window(instance);
    if (!slow.feasible) continue;
    const int c =
        (slow.schedule.machines + instance.machines - 1) / instance.machines;
    const auto fast = speed_transform(instance, slow.schedule, c);
    bench.check("transform-seed-" + std::to_string(seed), fast.has_value());
    if (!fast) {
      std::cerr << "seed " << seed << ": speed transform failed\n";
      return bench.finish();
    }
    const VerifyResult check = verify_ise(instance, *fast);
    bench.check("verified-seed-" + std::to_string(seed), check.ok());
    table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(std::int64_t{instance.machines})
        .cell(std::int64_t{slow.schedule.machines_used()})
        .cell(slow.schedule.num_calibrations())
        .cell(std::int64_t{fast->machines_used()})
        .cell(static_cast<std::int64_t>(fast->speed))
        .cell(fast->num_calibrations())
        .cell(fast->num_calibrations() <= slow.schedule.num_calibrations())
        .cell(check.ok());
  }
  bench.print_table("transform", "Theorem 12 schedule -> m machines at speed 2c");
  bench.note(
      "Theorem 14: m machines at speed 36 with <= 12 C* calibrations. The "
      "transform often *merges* calibrations (target calendars cover "
      "several source calibrations), so dst-cals can be far below "
      "src-cals.");
  return bench.finish();
}

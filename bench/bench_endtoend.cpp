// Experiment E4 — Theorem 1: the combined solver on mixed instances.
//
// Sweeps mixtures of long- and short-window jobs, compares the solver's
// calibration count against the combinatorial lower bound and the naive
// baselines, and reports where each policy wins. Three regimes:
//   sparse  - few jobs per window; per-job calibration is near-optimal and
//             the pipeline's constant factors dominate;
//   dense   - many jobs share each window over a short horizon; the
//             always-calibrated baseline's span-driven cost is cheap there;
//   bursty  - work clustered into waves across a long horizon; sharing
//             calibrations inside each wave is the regime the ISE
//             objective is designed for.
#include <string_view>

#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "baselines/ise_lp_bound.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "solver/ise_solver.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("E4", "end-to-end solver (Theorem 1) vs baselines", argc,
                     argv);

  struct Case {
    const char* regime;
    int n;
    Time horizon_factor;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    cases.push_back({"sparse", 12, 20, seed});
    cases.push_back({"dense", 40, 6, seed});
    cases.push_back({"dense", 60, 5, seed});
    // bursty: long horizon, work clustered into a few waves — the regime
    // the ISE objective is about: keep machines calibrated only near work.
    cases.push_back({"bursty", 48, 60, seed});
  }

  struct Row {
    Case c;
    std::int64_t lb = 0;
    std::size_t ours = 0, per_job = 0;
    bool ours_ok = false, saturate_ok = false;
    std::size_t saturate = 0;
    std::size_t lazy = 0;
    bool lazy_ok = false;
    bool verified = false;
  };
  std::vector<Row> rows(cases.size());
  bench.sweep(cases.size(), [&](std::size_t i) {
    GenParams params;
    params.seed = cases[i].seed;
    params.n = cases[i].n;
    params.T = 10;
    params.machines = 3;
    params.horizon = cases[i].horizon_factor * params.T;
    params.min_proc = 1;
    params.max_proc = 4;
    const Instance instance =
        std::string_view(cases[i].regime) == "bursty"
            ? generate_clustered(params, /*bursts=*/4, /*burst_span=*/params.T,
                                 /*long_windows=*/false)
            : generate_mixed(params, 0.5);
    Row& row = rows[i];
    row.c = cases[i];
    row.lb = ise_certified_bound(instance);

    const IseSolveResult ours = solve_ise(instance);
    if (ours.feasible) {
      row.ours_ok = true;
      row.ours = ours.total_calibrations;
      row.verified = verify_ise(instance, ours.schedule).ok();
    }
    const BaselineResult per_job = PerJobCalibration().solve(instance);
    row.per_job = per_job.schedule.num_calibrations();
    const BaselineResult saturate = SaturateCalibration().solve(instance);
    row.saturate_ok = saturate.feasible;
    if (saturate.feasible) row.saturate = saturate.schedule.num_calibrations();
    const BaselineResult lazy = GreedyLazyIse().solve(instance);
    row.lazy_ok = lazy.feasible && verify_ise(instance, lazy.schedule).ok();
    if (row.lazy_ok) row.lazy = lazy.schedule.num_calibrations();
  });

  Table& table = bench.table(
      "regimes", {"regime", "n", "seed", "LB", "ours", "ours/LB",
                  "greedy-lazy", "per-job", "saturate", "winner", "verified"});
  for (const Row& row : rows) {
    if (!row.ours_ok) continue;
    bench.check(std::string(row.c.regime) + "-n" + std::to_string(row.c.n) +
                    "-seed" + std::to_string(row.c.seed) + "-verified",
                row.verified);
    const char* winner = row.ours <= row.per_job &&
                                 (!row.saturate_ok || row.ours <= row.saturate)
                             ? "ours"
                         : row.saturate_ok && row.saturate < row.per_job
                             ? "saturate"
                             : "per-job";
    table.row()
        .cell(row.c.regime)
        .cell(std::int64_t{row.c.n})
        .cell(static_cast<std::int64_t>(row.c.seed))
        .cell(row.lb)
        .cell(row.ours)
        .cell(static_cast<double>(row.ours) / static_cast<double>(row.lb), 2)
        .cell(row.lazy_ok ? std::to_string(row.lazy) : std::string("-"))
        .cell(row.per_job)
        .cell(row.saturate_ok ? std::to_string(row.saturate) : std::string("-"))
        .cell(winner)
        .cell(row.verified);
  }
  bench.print_table("regimes", "mixed instances, T=10, m=3, p in [1,4]");
  bench.note(
      "Expected shape: per-job wins sparse instances (n calibrations is "
      "near-optimal there); saturate wins short dense horizons (its cost is "
      "span-driven); the solver wins bursty long horizons, where sharing "
      "calibrations inside each wave beats both paying per job and paying "
      "per time slice. The unguaranteed greedy-lazy heuristic is "
      "near-optimal when it succeeds ('-' marks honest failures) — the "
      "provable pipeline's value is that it never wedges.");
  return bench.finish();
}

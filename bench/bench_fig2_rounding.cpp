// Experiment F2 — Figure 2: Algorithm 1's half-unit calibration rounding.
//
// Reproduces the paper's trace on its example profile, then sweeps random
// fractional profiles and checks the two facts the analysis uses:
//   (a) #rounded = floor(2 * total mass)   (Lemma 7's 2x factor), and
//   (b) any window [t, t+T) holds at most 2*(1/2 + window mass) rounded
//       calibrations (the counting step inside Lemma 4).
#include <numeric>

#include "gen/paper_figures.hpp"
#include "harness.hpp"
#include "longwin/rounding.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("F2", "Algorithm 1 rounding (Figure 2)", argc, argv);

  // --- the paper's example ---------------------------------------------------
  const FractionalProfile profile = figure2_profile();
  double running = 0.0;
  Table& trace = bench.table(
      "example", {"t", "C_t", "running total", "calibrations emitted"});
  std::size_t emitted_before = 0;
  for (std::size_t i = 0; i < profile.points.size(); ++i) {
    running += profile.mass[i];
    std::vector<Time> prefix_points(profile.points.begin(),
                                    profile.points.begin() + i + 1);
    std::vector<double> prefix_mass(profile.mass.begin(),
                                    profile.mass.begin() + i + 1);
    const std::size_t emitted =
        round_calibrations(prefix_points, prefix_mass).size();
    trace.row()
        .cell(profile.points[i])
        .cell(profile.mass[i], 2)
        .cell(running, 2)
        .cell(emitted - emitted_before);
    emitted_before = emitted;
  }
  bench.print_table("example", "paper example: masses {0.2, 0.35, 0.25, 0.8}");

  // --- randomized checks ------------------------------------------------------
  Rng rng(5150);
  const Time T = 10;
  Table& table = bench.table(
      "invariants", {"trial", "points", "total-mass", "rounded",
                     "floor(2*mass)", "max-window", "window-bound", "all-ok"});
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<Time> points;
    std::vector<double> mass;
    Time t = 0;
    const int count = 20 + static_cast<int>(rng.index(40));
    for (int i = 0; i < count; ++i) {
      t += rng.uniform_int(1, 6);
      points.push_back(t);
      mass.push_back(rng.uniform01() * 1.2);
    }
    const double total = std::accumulate(mass.begin(), mass.end(), 0.0);
    const auto starts = round_calibrations(points, mass);

    // (b): sliding window count vs mass in the same window.
    std::size_t worst_window = 0;
    bool window_ok = true;
    for (std::size_t i = 0; i < starts.size(); ++i) {
      std::size_t in_window = 0;
      for (std::size_t j = i; j < starts.size() && starts[j] < starts[i] + T; ++j) {
        ++in_window;
      }
      double window_mass = 0.0;
      for (std::size_t p = 0; p < points.size(); ++p) {
        if (points[p] >= starts[i] && points[p] < starts[i] + T) {
          window_mass += mass[p];
        }
      }
      worst_window = std::max(worst_window, in_window);
      if (static_cast<double>(in_window) > 2.0 * (0.5 + window_mass) + 1e-6) {
        window_ok = false;
      }
    }
    const auto expected = static_cast<std::size_t>(2.0 * total + 1e-9);
    bench.check("trial-" + std::to_string(trial),
                starts.size() == expected && window_ok);
    table.row()
        .cell(std::int64_t{trial})
        .cell(points.size())
        .cell(total, 2)
        .cell(starts.size())
        .cell(expected)
        .cell(worst_window)
        .cell("2*(1/2+mass)")
        .cell(starts.size() == expected && window_ok);
  }
  bench.print_table("invariants", "randomized rounding invariants");
  return bench.finish();
}

#include "harness.hpp"

#include <fstream>
#include <iostream>

#include "trace/json.hpp"

namespace calisched {

namespace {
[[nodiscard]] bool targets_stdout(const std::string& path) {
  return path.empty() || path == "-" || path == "true";
}
}  // namespace

BenchHarness::BenchHarness(std::string id, std::string title, int argc,
                           char** argv)
    : id_(std::move(id)),
      title_(std::move(title)),
      args_(argc, argv),
      json_to_stdout_(args_.has("json") && targets_stdout(args_.get("json", ""))),
      trace_(id_),
      start_(std::chrono::steady_clock::now()) {
  human() << id_ << ": " << title_ << "\n\n";
}

std::ostream& BenchHarness::human() const noexcept {
  return json_to_stdout_ ? std::cerr : std::cout;
}

Table& BenchHarness::table(const std::string& key,
                           std::vector<std::string> header) {
  for (NamedTable& entry : tables_) {
    if (entry.key == key) return entry.table;
  }
  tables_.push_back({key, "", Table(std::move(header)), false});
  return tables_.back().table;
}

void BenchHarness::print_table(const std::string& key,
                               const std::string& title) {
  for (NamedTable& entry : tables_) {
    if (entry.key != key) continue;
    entry.title = title;
    entry.table.print(human(), title);
    entry.printed = true;
    return;
  }
}

void BenchHarness::metric(const std::string& name, double value) {
  metrics_.emplace_back(name, value);
  trace_.set_value(name, value);
}

void BenchHarness::lp_counters(const std::string& label,
                               const LpPerfCounters& delta, double elapsed_ms,
                               bool record_metrics) {
  Table& counters = table(
      "lp_counters", {"case", "solves", "pivots", "refactors", "pivots_per_s",
                      "etas_per_s", "bytes_per_pivot", "ws_reuse", "buf_growth"});
  const double seconds = elapsed_ms / 1e3;
  const double pivots_per_s =
      seconds > 0.0 ? static_cast<double>(delta.pivots) / seconds : 0.0;
  const double etas_per_s =
      seconds > 0.0 ? static_cast<double>(delta.etas_applied) / seconds : 0.0;
  const double bytes_per_pivot =
      delta.pivots > 0 ? static_cast<double>(delta.bytes_streamed()) /
                             static_cast<double>(delta.pivots)
                       : 0.0;
  counters.row()
      .cell(label)
      .cell(delta.solves)
      .cell(delta.pivots)
      .cell(delta.refactorizations)
      .cell(pivots_per_s, 0)
      .cell(etas_per_s, 0)
      .cell(bytes_per_pivot, 1)
      .cell(delta.workspace_reuses)
      .cell(delta.buffer_growths);
  if (!record_metrics) return;
  metric(label + "_pivots", static_cast<double>(delta.pivots));
  metric(label + "_etas_applied", static_cast<double>(delta.etas_applied));
  metric(label + "_bytes_per_pivot", bytes_per_pivot);
  metric(label + "_workspace_reuses",
         static_cast<double>(delta.workspace_reuses));
  metric(label + "_buffer_growths", static_cast<double>(delta.buffer_growths));
  metric(label + "_pivots_per_s", pivots_per_s);
  metric(label + "_etas_per_s", etas_per_s);
}

void BenchHarness::check(const std::string& name, bool ok) {
  checks_.emplace_back(name, ok);
  if (!ok) {
    failed_ = true;
    human() << "CHECK FAILED: " << name << '\n';
  }
}

void BenchHarness::note(const std::string& text) {
  notes_.push_back(text);
  human() << '\n' << text << '\n';
}

int BenchHarness::finish() {
  for (NamedTable& entry : tables_) {
    if (!entry.printed) {
      entry.table.print(human(), entry.title);
      entry.printed = true;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  trace_.record_span(
      "bench",
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());

  const std::string json_path = args_.get("json", "");
  if (args_.has("json")) {
    JsonValue::Object record;
    record.emplace_back("bench", JsonValue(id_));
    record.emplace_back("title", JsonValue(title_));
    record.emplace_back(
        "elapsed_ns",
        JsonValue(static_cast<std::int64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count())));
    JsonValue::Object tables;
    for (const NamedTable& entry : tables_) {
      JsonValue::Object table_json;
      table_json.emplace_back("title", JsonValue(entry.title));
      JsonValue::Array header;
      for (const std::string& cell : entry.table.header()) {
        header.emplace_back(cell);
      }
      table_json.emplace_back("header", JsonValue(std::move(header)));
      JsonValue::Array rows;
      for (const std::vector<std::string>& row : entry.table.rows()) {
        JsonValue::Array cells;
        for (const std::string& cell : row) cells.emplace_back(cell);
        rows.emplace_back(std::move(cells));
      }
      table_json.emplace_back("rows", JsonValue(std::move(rows)));
      tables.emplace_back(entry.key, JsonValue(std::move(table_json)));
    }
    record.emplace_back("tables", JsonValue(std::move(tables)));
    JsonValue::Object metrics;
    for (const auto& [name, value] : metrics_) {
      metrics.emplace_back(name, JsonValue(value));
    }
    record.emplace_back("metrics", JsonValue(std::move(metrics)));
    JsonValue::Object checks;
    for (const auto& [name, ok] : checks_) {
      checks.emplace_back(name, JsonValue(ok));
    }
    record.emplace_back("checks", JsonValue(std::move(checks)));
    JsonValue::Array notes;
    for (const std::string& text : notes_) notes.emplace_back(text);
    record.emplace_back("notes", JsonValue(std::move(notes)));
    record.emplace_back("trace", trace_.to_json());
    const JsonValue json(std::move(record));
    if (json_to_stdout_) {
      std::cout << json.dump(2) << '\n';
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot open " << json_path << " for writing\n";
        return 2;
      }
      out << json.dump(2) << '\n';
    }
  }
  for (const std::string& flag : args_.unused()) {
    std::cerr << "warning: unused flag --" << flag << '\n';
  }
  return failed_ ? 1 : 0;
}

}  // namespace calisched

// Experiment E12 — LP engine comparison: dense tableau vs revised simplex.
//
// Solves the same TISE relaxations with both engines and records wall
// time, pivot counts, and refactorizations across instance sizes. The
// acceptance bar for the sparse engine is >= 3x over the dense tableau on
// the largest LP in the sweep with identical optimal objectives; measured
// speedups should be far larger, since a dense pivot costs O(rows x cols)
// while a revised pivot touches only stored nonzeros plus the eta file.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "longwin/tise_lp.hpp"
#include "lp/perf_counters.hpp"
#include "trace/trace.hpp"

namespace {

using namespace calisched;

/// Best-of-`reps` wall time in milliseconds (first call's solution kept).
template <typename Fn>
double time_ms(Fn&& fn, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    best = std::min(
        best,
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()) /
            1e6);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E12", "LP engines: dense tableau vs revised simplex",
                     argc, argv);

  Table& table = bench.table(
      "engines", {"n", "rows", "cols", "nnz", "dense-ms", "revised-ms",
                  "speedup", "dense-piv", "rev-piv", "refactors", "obj-diff"});

  double last_speedup = 0.0;
  double worst_obj_diff = 0.0;
  double revised_wall_ms = 0.0;  ///< total revised wall time across reps
  const LpPerfCounters sweep_base = lp_perf_snapshot();
  for (const int n : {6, 10, 14, 20, 26, 32}) {
    GenParams params;
    params.seed = 42 + static_cast<std::uint64_t>(n);
    params.n = n;
    params.T = 10;
    params.machines = 2;
    params.horizon = 10 * params.T;
    params.max_proc = 10;
    const Instance instance = generate_long_window(params);
    const TiseLpModel built = build_tise_lp(instance, 3 * instance.machines);

    SimplexOptions dense_options;
    dense_options.engine = LpEngine::kDenseTableau;
    SimplexOptions revised_options;
    revised_options.engine = LpEngine::kRevised;
    TraceContext& revised_trace =
        bench.trace().child("revised_n" + std::to_string(n));
    revised_options.trace = &revised_trace;

    LpSolution dense;
    LpSolution revised;
    // One timing-free solve each to size the repetition count.
    const double dense_once = time_ms(
        [&] { dense = solve_lp(built.model, dense_options); }, 1);
    const int dense_reps = dense_once > 500.0 ? 1 : 3;
    const double dense_ms = std::min(
        dense_once,
        time_ms([&] { dense = solve_lp(built.model, dense_options); },
                dense_reps));
    // The counter delta spans all revised reps (the dense engine does not
    // touch the LP perf counters), so rates divide by total wall, not best.
    const LpPerfCounters rev_before = lp_perf_snapshot();
    const auto rev_start = std::chrono::steady_clock::now();
    const double revised_ms = time_ms(
        [&] { revised = solve_lp(built.model, revised_options); }, 3);
    const double rev_total_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - rev_start)
                .count()) /
        1e6;
    revised_wall_ms += rev_total_ms;
    bench.lp_counters("rev_n" + std::to_string(n),
                      lp_perf_snapshot() - rev_before, rev_total_ms,
                      /*record_metrics=*/false);

    const double speedup = revised_ms > 0.0 ? dense_ms / revised_ms : 0.0;
    const double obj_diff = std::fabs(dense.objective - revised.objective);
    last_speedup = speedup;
    worst_obj_diff = std::max(worst_obj_diff, obj_diff);
    const bool statuses_ok = dense.status == LpStatus::kOptimal &&
                             revised.status == LpStatus::kOptimal;
    bench.check("objective-match-n" + std::to_string(n),
                statuses_ok && obj_diff <= 1e-6);

    table.row()
        .cell(instance.size())
        .cell(built.model.num_rows())
        .cell(built.model.num_variables())
        .cell(built.model.num_nonzeros())
        .cell(dense_ms, 3)
        .cell(revised_ms, 3)
        .cell(speedup, 1)
        .cell(dense.phase1_pivots + dense.phase2_pivots)
        .cell(revised.phase1_pivots + revised.phase2_pivots)
        .cell(revised_trace.counter("refactor.count"))
        .cell(obj_diff, 9);
  }
  bench.print_table("engines",
                    "TISE LP (T=10, m=2, m'=6), both engines to optimality");
  bench.lp_counters("rev_total", lp_perf_snapshot() - sweep_base,
                    revised_wall_ms);
  bench.print_table("lp_counters",
                    "revised-engine work counters (all reps; counts are "
                    "deterministic, *_per_s rates are machine-dependent)");
  bench.metric("speedup_largest_instance", last_speedup);
  bench.metric("worst_objective_diff", worst_obj_diff);
  bench.check("revised >= 3x dense on largest LP", last_speedup >= 3.0);
  bench.note(
      "revised simplex is " + format_double(last_speedup, 1) +
      "x the dense tableau on the largest TISE LP in the sweep; objectives "
      "agree to " + format_double(worst_obj_diff, 9) +
      " (tolerance 1e-6). The gap widens with size: dense pivots are "
      "O(rows x cols) while revised pivots touch only column nonzeros plus "
      "the eta file.");
  return bench.finish();
}

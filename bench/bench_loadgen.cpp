// Experiment E19 — open-loop load on the epoll front end.
//
// Drives the in-process solve service through real loopback sockets with
// the open-loop generator (src/service/loadgen.hpp): a warm-up request
// populates the result cache, so every measured request is answered from
// the cache-hit fast path and the numbers isolate the *front end* —
// framing, ordering, socket I/O — from solver cost.
//
// Three parts:
//   * Flood capacity: rate-0 floods at 1 / 64 / 1024 connections against
//     the epoll server, best of `trials` runs per point (the generator
//     shares the host with the server, so single runs are noisy).
//     Throughput is the meaningful number; flood percentiles mostly
//     measure position in the flood, so they stay in the table.
//   * Differential: the same floods against the legacy
//     thread-per-connection TcpServer at 64 and 1024 connections. The
//     headline gate — epoll sustains a required multiple of the threaded
//     server's req/s at 1024 connections — is 5x on hosts with real
//     parallelism. On a host with <= 2 hardware cores the generator, the
//     service workers, and both front ends time-share one core, which
//     compresses the ratio (the threaded server's context-switch burn is
//     bounded by the same core everything else waits on), so the gate
//     relaxes to 2x there; the raw speedup is always exported.
//   * Paced tail latency: a Poisson arrival process well under capacity,
//     where scheduled-send-to-response percentiles are meaningful; p50/
//     p99/p999 are exported (advisory: wall-clock flavoured).
//
// Correctness gates ride along on every run: all requests answered, zero
// error responses, zero per-connection ordering violations, and the
// service-level hit/miss split (exactly one miss: the warm-up).
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "runtime/registry.hpp"
#include "service/epoll_server.hpp"
#include "service/loadgen.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace {

using namespace calisched;

/// One small instance, identical on every request, so all post-warm-up
/// traffic hits the result cache (same payload as `loadgen --preset=solve`).
std::string solve_body() {
  GenParams params;
  params.seed = 7;
  params.n = 8;
  params.T = 6;
  params.machines = 2;
  params.horizon = 60;
  params.max_proc = params.T;
  const Instance instance = generate_mixed(params, 0.5);
  return "\"type\":\"solve\",\"algo\":\"greedy-lazy\",\"instance\":" +
         dump_response(instance_to_json(instance));
}

/// Correctness counters accumulated across every trial of every run; the
/// throughput comparison may take the best trial, but a protocol error in
/// any trial still fails the bench.
struct Tally {
  std::int64_t errors = 0;
  std::int64_t order_violations = 0;
  bool completed = true;

  void absorb(const LoadGenReport& report) {
    errors += report.errors;
    order_violations += report.order_violations;
    completed = completed && report.completed && report.error.empty();
  }
};

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E19", "open-loop load on the epoll front end", argc,
                     argv);
  const std::int64_t requests = bench.args().get_int("requests", 8000);
  const int trials = static_cast<int>(bench.args().get_int("trials", 2));
  const std::int64_t paced_requests =
      bench.args().get_int("paced-requests", 2000);
  const double paced_rate = bench.args().get_double("paced-rate", 2000.0);
  const std::string body = solve_body();
  Tally tally;

  // Best-of-`trials` flood against `port`; every trial's correctness
  // counters land in the tally.
  const auto best_flood = [&](int port, std::size_t connections) {
    LoadGenReport best;
    for (int trial = 0; trial < trials; ++trial) {
      LoadGenOptions load;
      load.port = port;
      load.connections = connections;
      load.requests = requests;
      load.rate = 0.0;
      load.body = body;
      load.timeout_ms = 120000;
      const LoadGenReport report = run_loadgen(load);
      tally.absorb(report);
      if (report.received_per_s > best.received_per_s) best = report;
    }
    return best;
  };
  const auto flood_row = [](Table& table, const std::string& front_end,
                            std::size_t connections,
                            const LoadGenReport& report) {
    table.row()
        .cell(front_end)
        .cell(static_cast<std::int64_t>(connections))
        .cell(report.sent)
        .cell(report.received)
        .cell(report.received_per_s, 0)
        .cell(static_cast<double>(report.latency_p50_ns) / 1e3, 0)
        .cell(static_cast<double>(report.latency_p99_ns) / 1e3, 0)
        .cell(static_cast<double>(report.latency_p999_ns) / 1e3, 0);
  };

  ServiceOptions options;
  options.threads = 2;
  options.queue_capacity = 256;
  options.cache_capacity = 128;
  options.cache_shards = 8;
  SolveService service(AlgorithmRegistry::builtin(), options);

  EpollServerOptions epoll_options;
  epoll_options.io_threads = 2;
  EpollServer epoll_server(service, epoll_options);
  const int epoll_port = epoll_server.start();

  // Warm-up: the single cache miss of the whole experiment. Everything
  // after this is served from the cache-hit fast path.
  {
    LoadGenOptions warm_options;
    warm_options.port = epoll_port;
    warm_options.connections = 1;
    warm_options.requests = 1;
    warm_options.body = body;
    const LoadGenReport warm = run_loadgen(warm_options);
    tally.absorb(warm);
    bench.check("warm-up solve completes",
                warm.completed && warm.errors == 0);
  }

  Table& floods = bench.table(
      "floods", {"front-end", "conns", "requests", "received", "req/s",
                 "p50-us", "p99-us", "p999-us"});
  double epoll_1024_rate = 0.0;
  std::int64_t epoll_received = 0;
  for (const std::size_t connections : {std::size_t{1}, std::size_t{64},
                                        std::size_t{1024}}) {
    const LoadGenReport report = best_flood(epoll_port, connections);
    flood_row(floods, "epoll", connections, report);
    bench.metric("flood_c" + std::to_string(connections) + "_received_per_s",
                 report.received_per_s);
    epoll_received += report.received;
    if (connections == 1024) epoll_1024_rate = report.received_per_s;
  }
  bench.metric("flood_received_best_runs",
               static_cast<double>(epoll_received));

  // The legacy thread-per-connection front end on the same (warm)
  // service: the differential baseline for the headline check.
  TcpServer threaded_server(service);
  const int threaded_port = threaded_server.start(0);
  std::thread serving([&threaded_server] { threaded_server.serve(); });
  double threaded_1024_rate = 0.0;
  for (const std::size_t connections : {std::size_t{64}, std::size_t{1024}}) {
    const LoadGenReport report = best_flood(threaded_port, connections);
    flood_row(floods, "threads", connections, report);
    bench.metric("threaded_c" + std::to_string(connections) +
                     "_received_per_s",
                 report.received_per_s);
    if (connections == 1024) threaded_1024_rate = report.received_per_s;
  }
  threaded_server.stop();
  serving.join();
  bench.print_table("floods", "rate-0 floods of " + std::to_string(requests) +
                                  " cache-hit solve requests, best of " +
                                  std::to_string(trials) + " runs");

  const double speedup = threaded_1024_rate > 0.0
                             ? epoll_1024_rate / threaded_1024_rate
                             : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  const double required = cores > 2 ? 5.0 : 2.0;
  bench.metric("hardware_cores", static_cast<double>(cores));
  bench.metric("epoll_vs_threads_speedup_c1024", speedup);
  bench.metric("required_speedup_multiple", required);
  bench.check("epoll sustains the required multiple of threaded req/s "
              "at 1024 connections",
              speedup >= required);

  // Paced run: Poisson arrivals well under capacity, so the tail
  // percentiles measure service latency rather than flood position.
  LoadGenOptions paced;
  paced.port = epoll_port;
  paced.connections = 64;
  paced.requests = paced_requests;
  paced.rate = paced_rate;
  paced.pacing = LoadGenOptions::Pacing::kPoisson;
  paced.seed = 1;
  paced.body = body;
  const LoadGenReport paced_report = run_loadgen(paced);
  tally.absorb(paced_report);
  Table& tail = bench.table(
      "paced", {"rate-target", "requests", "received", "p50-us", "p99-us",
                "p999-us"});
  tail.row()
      .cell(paced_rate, 0)
      .cell(paced_report.sent)
      .cell(paced_report.received)
      .cell(static_cast<double>(paced_report.latency_p50_ns) / 1e3, 0)
      .cell(static_cast<double>(paced_report.latency_p99_ns) / 1e3, 0)
      .cell(static_cast<double>(paced_report.latency_p999_ns) / 1e3, 0);
  bench.print_table("paced", "Poisson-paced run at " +
                                 format_double(paced_rate, 0) +
                                 " req/s target, 64 connections");
  bench.metric("paced_received", static_cast<double>(paced_report.received));
  bench.metric("paced_latency_p50_ns",
               static_cast<double>(paced_report.latency_p50_ns));
  bench.metric("paced_latency_p99_ns",
               static_cast<double>(paced_report.latency_p99_ns));
  bench.metric("paced_latency_p999_ns",
               static_cast<double>(paced_report.latency_p999_ns));

  epoll_server.stop();
  epoll_server.serve();
  const ServiceStats stats = service.stats();
  service.shutdown(/*drain=*/true);

  // Correctness gates: counted, deterministic, baseline-stable.
  bench.metric("loadgen_errors", static_cast<double>(tally.errors));
  bench.metric("order_violations",
               static_cast<double>(tally.order_violations));
  bench.metric("service_cache_misses",
               static_cast<double>(stats.cache_misses));
  bench.check("every request of every run answered", tally.completed);
  bench.check("zero ordering violations across all runs",
              tally.order_violations == 0);
  bench.check("zero error responses across all runs", tally.errors == 0);
  bench.check("exactly one cache miss (the warm-up)",
              stats.cache_misses == 1);

  bench.note(
      "every measured request is the same small instance, so after the "
      "single warm-up miss the service answers from the sharded result "
      "cache and the run measures the front end alone. The epoll server "
      "(2 I/O threads) keeps per-connection state on one loop and batches "
      "responses into single write() calls, while the legacy server burns "
      "two threads per connection; at 1024 connections (2048 threads) the "
      "throughput ratio is the headline gate: 5x on multi-core hosts, "
      "relaxed to 2x when <= 2 hardware cores force the generator, the "
      "workers, and both front ends to time-share (this host: " +
      std::to_string(cores) +
      " core(s), measured " + format_double(speedup, 1) +
      "x). Flood percentiles measure position in the flood and stay in "
      "the table; the Poisson-paced run at " +
      format_double(paced_rate, 0) +
      " req/s is the one whose p50/p99/p999 mean service latency. Rates, "
      "latencies, and the speedup are advisory for the regression "
      "checker; the counted gates are completion, zero errors, zero "
      "ordering violations, and the exact hit/miss split.");
  return bench.finish();
}

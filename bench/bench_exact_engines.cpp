// Experiment E18 — exact-engine comparison: layered state-space search vs
// branch-and-bound on structured wave families.
//
// Two size ladders, each solved by both engines under the SAME node/state
// budget until an engine first fails to certify:
//
//   * mm-waves  — k waves of six identical jobs {12w, 12w+6, 4}: one job
//     per machine per wave (m* = 6) while the load lower bound is 4, so
//     ExactMM must *prove* m = 4, 5 infeasible before certifying m* = 6.
//     Identical jobs make those proofs permutation-heavy: DFS re-refutes
//     every twin order, the layered engine collapses them to per-wave
//     counts (twin_prev_links) and prunes doomed mixtures energetically.
//   * ise-waves — k waves of four identical jobs {10w, 10w+8, 2} on one
//     machine, T = 6: three jobs share a calibration and adjacent waves
//     share boundary calibrations, so the optimum is nontrivial.
//
// The headline metrics are the largest n each engine certifies
// (mm/ise_max_certified_n_*, higher is better, gated) and the search-size
// counters (states/nodes/merged/dominated, advisory — they move with any
// engine tweak and are reported, not gated). Self-checks: both engines
// report identical optima whenever both certify, and the state-space
// engine's certified frontier is >= 5x branch-and-bound's on both ladders.
#include <chrono>
#include <string>
#include <vector>

#include "baselines/exact_ise.hpp"
#include "core/instance.hpp"
#include "exact/search_stats.hpp"
#include "harness.hpp"
#include "mm/mm.hpp"
#include "util/table.hpp"

namespace {

using namespace calisched;

constexpr std::int64_t kBudget = 5'000'000;

Instance wave_instance(int k, int c, Time gap, Time window, Time proc,
                       Time T, int machines) {
  Instance instance;
  instance.T = T;
  instance.machines = machines;
  JobId id = 0;
  for (int w = 0; w < k; ++w) {
    for (int i = 0; i < c; ++i) {
      instance.jobs.push_back({id++, w * gap, w * gap + window, proc});
    }
  }
  return instance;
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - since)
                 .count()) /
         1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E18", "exact engines: state-space vs branch-and-bound",
                     argc, argv);

  bool optima_agree = true;
  bool all_verified = true;

  // ----------------------------------------------------------- mm-waves --
  Table& mm_table = bench.table(
      "mm", {"n", "engine", "certified", "machines", "nodes", "ms"});
  int mm_max_state = 0;
  int mm_max_bnb = 0;
  ExactSearchCounters mm_counters;
  for (const ExactEngine engine :
       {ExactEngine::kStateSpace, ExactEngine::kBranchBound}) {
    const bool is_state = engine == ExactEngine::kStateSpace;
    for (const int k : {1, 2, 4, 8, 16}) {
      const Instance instance = wave_instance(k, 6, 12, 6, 4, 1'000'000, 1);
      const int n = 6 * k;
      const ExactMM mm(kBudget, engine);
      exact_search_reset();
      const auto start = std::chrono::steady_clock::now();
      const MMResult result = mm.minimize(instance);
      const double ms = elapsed_ms(start);
      const bool certified = result.feasible && result.algorithm == mm.name();
      if (is_state) {
        const ExactSearchCounters delta = exact_search_snapshot();
        mm_counters = mm_counters + delta;
      }
      mm_table.row()
          .cell(static_cast<std::int64_t>(n))
          .cell(mm.name())
          .cell(certified ? "yes" : "no")
          .cell(static_cast<std::int64_t>(certified ? result.schedule.machines
                                                    : -1))
          .cell(result.search_nodes)
          .cell(ms, 1);
      if (!certified) break;
      if (!verify_mm(instance, result.schedule).ok()) all_verified = false;
      // The ladder's optimum is m* = 6 at every size (one wave job per
      // machine); an engine reporting anything else is a wrong optimum.
      if (result.schedule.machines != 6) optima_agree = false;
      (is_state ? mm_max_state : mm_max_bnb) = n;
    }
  }
  bench.print_table("mm", "ExactMM minimize on fragmentation waves (m* = 6)");

  // ---------------------------------------------------------- ise-waves --
  Table& ise_table = bench.table(
      "ise", {"n", "engine", "certified", "optimum", "nodes", "ms"});
  int ise_max_state = 0;
  int ise_max_bnb = 0;
  std::vector<std::int64_t> state_optima;  // indexed by ladder step
  ExactSearchCounters ise_counters;
  for (const ExactEngine engine :
       {ExactEngine::kStateSpace, ExactEngine::kBranchBound}) {
    const bool is_state = engine == ExactEngine::kStateSpace;
    std::size_t step = 0;
    for (const int k : {5, 10, 25, 50}) {
      const Instance instance = wave_instance(k, 4, 10, 8, 2, 6, 1);
      const int n = 4 * k;
      ExactIseOptions options;
      options.engine = engine;
      options.node_budget = kBudget;
      options.max_calibrations = 999;
      exact_search_reset();
      const auto start = std::chrono::steady_clock::now();
      const ExactIseResult result = solve_exact_ise(instance, options);
      const double ms = elapsed_ms(start);
      const bool certified = result.solved && result.feasible;
      if (is_state) {
        const ExactSearchCounters delta = exact_search_snapshot();
        ise_counters = ise_counters + delta;
      }
      ise_table.row()
          .cell(static_cast<std::int64_t>(n))
          .cell(is_state ? "state-space" : "bnb")
          .cell(certified ? "yes" : "no")
          .cell(static_cast<std::int64_t>(
              certified ? static_cast<std::int64_t>(result.optimal_calibrations)
                        : -1))
          .cell(result.nodes)
          .cell(ms, 1);
      if (!certified) break;
      if (!verify_ise(instance, result.schedule).ok()) all_verified = false;
      const auto optimum =
          static_cast<std::int64_t>(result.optimal_calibrations);
      if (is_state) {
        ise_max_state = n;
        state_optima.push_back(optimum);
      } else {
        ise_max_bnb = n;
        if (step < state_optima.size() && state_optima[step] != optimum) {
          optima_agree = false;
        }
      }
      ++step;
    }
  }
  bench.print_table("ise", "exact ISE on single-machine calibration waves");

  bench.metric("mm_max_certified_n_state", mm_max_state);
  bench.metric("mm_max_certified_n_bnb", mm_max_bnb);
  bench.metric("ise_max_certified_n_state", ise_max_state);
  bench.metric("ise_max_certified_n_bnb", ise_max_bnb);
  bench.metric("mm_states_created",
               static_cast<double>(mm_counters.states_created));
  bench.metric("mm_states_merged",
               static_cast<double>(mm_counters.states_merged));
  bench.metric("mm_states_dominated",
               static_cast<double>(mm_counters.states_dominated));
  bench.metric("mm_states_pruned",
               static_cast<double>(mm_counters.states_pruned));
  bench.metric("ise_states_created",
               static_cast<double>(ise_counters.states_created));
  bench.metric("ise_states_merged",
               static_cast<double>(ise_counters.states_merged));
  bench.metric("ise_states_dominated",
               static_cast<double>(ise_counters.states_dominated));
  bench.metric("ise_states_pruned",
               static_cast<double>(ise_counters.states_pruned));

  bench.check("optima_agree_where_both_certify", optima_agree);
  bench.check("all_schedules_verified", all_verified);
  bench.check("state_certifies_5x_bnb_mm",
              mm_max_bnb > 0 && mm_max_state >= 5 * mm_max_bnb);
  bench.check("state_certifies_5x_bnb_ise",
              ise_max_bnb > 0 && ise_max_state >= 5 * ise_max_bnb);

  bench.note("certified frontier under a shared " +
             std::to_string(kBudget / 1'000'000) +
             "M node/state budget: minimize " + std::to_string(mm_max_state) +
             " vs " + std::to_string(mm_max_bnb) + " jobs (mm), " +
             std::to_string(ise_max_state) + " vs " +
             std::to_string(ise_max_bnb) +
             " jobs (ise); the twin-collapsing layered engine proves the "
             "permutation-heavy infeasibilities branch-and-bound cannot.");
  return bench.finish();
}

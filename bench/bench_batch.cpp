// Experiment E13 — batch-solve throughput and determinism across threads.
//
// Runs the combined Theorem-1 solver over one generated mixed batch with
// the BatchRunner at 1/2/4/8 worker threads, recording wall time,
// throughput, and the byte-identity of the timing-free JSONL output. The
// acceptance bar is >= 3x throughput at 8 threads over 1 thread on >= 200
// mixed instances with byte-identical records — but scaling is only
// measurable when the machine has cores to scale onto, so the speedup
// check is gated on hardware_concurrency >= 4 (the determinism check runs
// everywhere).
#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include "harness.hpp"
#include "lp/perf_counters.hpp"
#include "runtime/batch.hpp"
#include "runtime/registry.hpp"

namespace {

using namespace calisched;

std::string records_jsonl(const std::vector<BatchRecord>& records) {
  std::ostringstream out;
  write_batch_jsonl(out, records, /*include_timing=*/false);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E13", "batch-solve throughput across worker threads",
                     argc, argv);

  BatchSpec spec;
  spec.family = "mixed";
  spec.count = static_cast<std::size_t>(
      bench.args().get_int("count", 200));
  spec.params.seed = 1234;
  spec.params.n = 12;
  spec.params.T = 10;
  spec.params.machines = 2;
  spec.params.horizon = 100;
  spec.params.max_proc = 9;
  std::vector<std::uint64_t> seeds;
  const std::vector<Instance> instances = generate_batch(spec, &seeds);

  const Algorithm* combined = AlgorithmRegistry::builtin().find("combined");
  const BatchRunner runner(*combined);

  const unsigned cores = std::thread::hardware_concurrency();
  Table& table = bench.table(
      "throughput",
      {"threads", "instances", "solved", "wall-ms", "inst-per-s", "speedup"});

  double single_ms = 0.0;
  double eight_ms = 0.0;
  std::string reference_jsonl;
  bool all_identical = true;
  bool all_solved = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    BatchOptions options;
    options.threads = threads;
    options.seeds = seeds;
    const LpPerfCounters lp_before = lp_perf_snapshot();
    const auto start = std::chrono::steady_clock::now();
    const std::vector<BatchRecord> records = runner.run(instances, options);
    const double wall_ms =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count()) /
        1e6;

    // LP work per batch is deterministic at every thread count; workspace
    // reuses and buffer growths depend on how many pool workers actually
    // ran (each worker's first solve is cold), so only the single-thread
    // row — one warm workspace for the whole batch — gates the regression
    // checker. This is where the allocations-per-solve story shows up:
    // reuses ~ solves and growths plateau once the arena fits the family.
    bench.lp_counters("t" + std::to_string(threads),
                      lp_perf_snapshot() - lp_before, wall_ms,
                      /*record_metrics=*/threads == 1);

    std::size_t solved = 0;
    for (const BatchRecord& record : records) solved += record.feasible;
    all_solved = all_solved && solved == records.size();

    const std::string jsonl = records_jsonl(records);
    if (threads == 1) {
      single_ms = wall_ms;
      reference_jsonl = jsonl;
    }
    if (threads == 8) eight_ms = wall_ms;
    all_identical = all_identical && jsonl == reference_jsonl;

    table.row()
        .cell(std::int64_t{static_cast<std::int64_t>(threads)})
        .cell(instances.size())
        .cell(solved)
        .cell(wall_ms, 1)
        .cell(wall_ms > 0.0 ? 1e3 * static_cast<double>(instances.size()) /
                                  wall_ms
                            : 0.0,
              0)
        .cell(wall_ms > 0.0 ? single_ms / wall_ms : 0.0, 2);
  }
  bench.print_table("throughput",
                    "combined solver, " + std::to_string(spec.count) +
                        " mixed instances (n=12, T=10, m=2), hardware cores: " +
                        std::to_string(cores));
  bench.print_table("lp_counters",
                    "LP work per batch (counts deterministic; ws_reuse/"
                    "buf_growth depend on worker count, so only t1 gates)");

  const double speedup = eight_ms > 0.0 ? single_ms / eight_ms : 0.0;
  bench.metric("speedup_8_threads", speedup);
  bench.metric("hardware_cores", static_cast<double>(cores));
  bench.check("all instances solved", all_solved);
  bench.check("jsonl byte-identical across thread counts", all_identical);
  if (cores >= 4) {
    bench.check("8-thread throughput >= 3x single-thread", speedup >= 3.0);
  }
  bench.note(
      "timing-free JSONL is byte-identical at every thread count — each task "
      "owns its instance, seed, and record slot, so scheduling order cannot "
      "leak into the output. 8-thread speedup on this machine: " +
      format_double(speedup, 2) + "x (" + std::to_string(cores) +
      " hardware cores; the >= 3x bar applies on machines with >= 4 cores, "
      "where per-instance solves are independent and embarrassingly "
      "parallel).");
  return bench.finish();
}

// Experiment E5 — Lemma 2's trim gap: exact TISE vs exact ISE optima.
//
// Lemma 2: a long-window instance feasible with C calibrations on m
// machines admits a TISE schedule with <= 3C calibrations on 3m machines.
// On tiny instances both optima are computable exactly, so we measure the
// realized gap TISE*(3m) / ISE*(m) and check it never exceeds 3.
#include <iostream>

#include "baselines/exact_ise.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("E5", "trim gap — exact TISE(3m) vs exact ISE(m) (Lemma 2)",
                     argc, argv);

  Table& table = bench.table(
      "gaps", {"seed", "n", "T", "ISE*-cals", "TISE*-cals(3m)", "gap",
               "gap<=3", "both-verified"});
  double worst_gap = 0.0;
  int measured = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4 + static_cast<int>(seed % 2);
    params.T = 5;
    params.machines = 1;
    params.horizon = 28;
    params.max_proc = 4;
    const Instance instance = generate_long_window(params, 2, 4);

    const ExactIseResult ise = solve_exact_ise(instance);
    if (!ise.solved || !ise.feasible) continue;

    Instance tripled = instance;
    tripled.machines = 3 * instance.machines;
    ExactIseOptions tise_options;
    tise_options.require_tise = true;
    const ExactIseResult tise = solve_exact_ise(tripled, tise_options);
    if (!tise.solved || !tise.feasible) continue;

    const double gap = static_cast<double>(tise.optimal_calibrations) /
                       static_cast<double>(ise.optimal_calibrations);
    worst_gap = std::max(worst_gap, gap);
    ++measured;
    bench.check("gap-seed-" + std::to_string(seed), gap <= 3.0 + 1e-9);
    table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(instance.T)
        .cell(ise.optimal_calibrations)
        .cell(tise.optimal_calibrations)
        .cell(gap, 2)
        .cell(gap <= 3.0 + 1e-9)
        .cell(verify_ise(instance, ise.schedule).ok() &&
              verify_tise(tripled, tise.schedule).ok());
  }
  bench.print_table("gaps", "exact trim gaps on tiny long-window instances");
  bench.metric("worst_gap", worst_gap);
  bench.metric("measured_instances", measured);
  bench.note("measured " + std::to_string(measured) + " instances, worst gap " +
             format_double(worst_gap, 2) + " (Lemma 2 ceiling: 3.00)");
  return bench.finish();
}

// Experiment F3 — Figure 3: Algorithm 3's fractional job assignment.
//
// Runs the real TISE LP + Algorithm 3 on long-window instances and checks
// the proof obligations the paper derives from the trace:
//   Lemma 5      y_j <= carryover at every scheduling event,
//   Corollary 6  every job covered >= 1, no calibration holds > T work.
// Also reports the "discarded fraction" events the figure illustrates.
#include <iostream>

#include "gen/generators.hpp"
#include "gen/paper_figures.hpp"
#include "harness.hpp"
#include "longwin/fractional_witness.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("F3", "Algorithm 3 fractional witness (Figure 3)", argc,
                     argv);

  // --- trace on the Figure-1 instance ---------------------------------------
  const Instance f1 = figure1_instance();
  const TiseFractional f1_lp = solve_tise_lp(f1, 3 * f1.machines);
  bench.check("figure1-lp-optimal", f1_lp.status == LpStatus::kOptimal);
  if (f1_lp.status != LpStatus::kOptimal) {
    std::cerr << "LP failed on the Figure-1 instance\n";
    return bench.finish();
  }
  const FractionalWitness f1_witness = run_fractional_witness(f1, f1_lp);
  Table& trace = bench.table(
      "example", {"calibration@", "job fractions (2*y_j at reset)"});
  for (const WitnessCalibration& cal : f1_witness.calibrations) {
    std::string fractions;
    for (const auto& [job, fraction] : cal.fractions) {
      fractions += "j" + std::to_string(job) + "=" +
                   format_double(fraction, 2) + " ";
    }
    trace.row().cell(cal.start).cell(fractions.empty() ? "(none)" : fractions);
  }
  bench.print_table("example", "witness trace on the Figure-1 instance");

  // --- invariant sweep --------------------------------------------------------
  Table& table = bench.table(
      "invariants", {"seed", "n", "calibrations", "min-coverage", "max-work/T",
                     "max(y-carry)", "discarded", "lemma5+cor6"});
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 12;
    params.T = 10;
    params.machines = 1 + static_cast<int>(seed % 3);
    params.horizon = 100;
    params.max_proc = 10;
    const Instance instance = generate_long_window(params);
    const TiseFractional fractional =
        solve_tise_lp(instance, 3 * instance.machines);
    if (fractional.status != LpStatus::kOptimal) continue;
    const FractionalWitness witness = run_fractional_witness(instance, fractional);
    const bool ok =
        witness.telemetry.max_y_minus_carryover <= 1e-6 &&
        witness.telemetry.min_job_coverage >= 1.0 - 1e-6 &&
        witness.telemetry.max_calibration_work <=
            static_cast<double>(instance.T) + 1e-6;
    bench.check("seed-" + std::to_string(seed), ok);
    table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(witness.calibrations.size())
        .cell(witness.telemetry.min_job_coverage, 3)
        .cell(witness.telemetry.max_calibration_work /
                  static_cast<double>(instance.T),
              3)
        .cell(witness.telemetry.max_y_minus_carryover, 9)
        .cell(std::int64_t{witness.telemetry.discarded_resets})
        .cell(ok);
  }
  bench.print_table("invariants", "Lemma 5 / Corollary 6 invariants across seeds");
  return bench.finish();
}

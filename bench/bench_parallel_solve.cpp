// Experiment E14 — intra-solve parallelism and simplex warm starts.
//
// Part A exercises the IntervalOptions::threads fan-out: one wide
// short-window instance (many disjoint 2*gamma*T intervals, the
// LP-rounding box doing real per-interval work) solved at 1/2/4/8 worker
// threads, recording wall time and the byte-identity of the serialized
// schedule. The acceptance bar is >= 2x at 4 threads — but like E13 the
// speedup check is gated on hardware_concurrency >= 4; the determinism
// check runs everywhere.
//
// Part B measures the WarmStart + SimplexWorkspace payoff on the
// m'-descending rhs sweep pattern (one LP shape, capacity tightening step
// by step) and on straight re-solves: total simplex pivots cold vs
// warm-chained, with the dense tableau's objective as the per-step oracle.
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule_io.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "verify/verify.hpp"

namespace {

using namespace calisched;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1e6;
}

/// One LP of the sweep family: negative costs push against per-variable
/// caps, a shared capacity row carries the sweeping rhs, and >= cover rows
/// force Phase 1 work on every cold solve. The structure is identical at
/// every capacity, so a warm basis can transfer between steps.
LpModel sweep_model(int capacity) {
  LpModel model;
  constexpr int kVars = 24;
  for (int v = 0; v < kVars; ++v) {
    model.add_variable("x" + std::to_string(v),
                       -(1.0 + 0.17 * static_cast<double>(v % 7)));
  }
  const int shared =
      model.add_row("capacity", RowSense::kLe, static_cast<double>(capacity));
  for (int v = 0; v < kVars; ++v) {
    model.add_coefficient(shared, v, 1.0);
    const int cap =
        model.add_row("cap" + std::to_string(v), RowSense::kLe,
                      2.0 + static_cast<double>((3 * v) % 5));
    model.add_coefficient(cap, v, 1.0);
  }
  for (int r = 0; r < 4; ++r) {
    const int row = model.add_row("cover" + std::to_string(r), RowSense::kGe,
                                  1.0 + 0.5 * static_cast<double>(r));
    for (int v = r; v < kVars; v += 4) model.add_coefficient(row, v, 1.0);
  }
  return model;
}

std::int64_t total_pivots(const LpSolution& solution) {
  return solution.phase1_pivots + solution.phase2_pivots +
         solution.expel_pivots;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E14",
                     "intra-solve parallelism and simplex warm starts",
                     argc, argv);

  // --- Part A: parallel interval fan-out -------------------------------
  GenParams params;
  params.seed = 42;
  params.n = static_cast<int>(bench.args().get_int("n", 480));
  params.T = 10;
  params.machines = 2;
  params.horizon = 80 * params.T;  // ~20 disjoint intervals per pass
  params.max_proc = 9;
  const Instance instance = generate_short_window(params);
  // Heavy per-interval work: one start-time LP + many rounding samples per
  // interval, so the fan-out has something worth parallelizing.
  LpRoundingMM::Options box_options;
  box_options.samples = 256;
  const LpRoundingMM box(box_options);

  const unsigned cores = std::thread::hardware_concurrency();
  Table& fanout = bench.table(
      "fanout", {"threads", "intervals", "cals", "wall-ms", "speedup"});

  double single_ms = 0.0;
  double four_ms = 0.0;
  std::string reference_bytes;
  bool all_identical = true;
  bool all_feasible = true;
  for (const int threads : {1, 2, 4, 8}) {
    IntervalOptions options;
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const ShortWindowResult result = solve_short_window(instance, box, options);
    const double wall_ms = elapsed_ms(start);
    all_feasible = all_feasible && result.feasible;
    if (!result.feasible) continue;

    std::ostringstream bytes;
    write_schedule(bytes, result.schedule);
    if (threads == 1) {
      single_ms = wall_ms;
      reference_bytes = bytes.str();
      bench.check("sequential schedule verifies",
                  verify_ise(instance, result.schedule).ok());
    }
    if (threads == 4) four_ms = wall_ms;
    all_identical = all_identical && bytes.str() == reference_bytes;

    fanout.row()
        .cell(std::int64_t{threads})
        .cell(std::int64_t{result.telemetry.intervals_pass1 +
                           result.telemetry.intervals_pass2})
        .cell(result.telemetry.total_calibrations)
        .cell(wall_ms, 1)
        .cell(wall_ms > 0.0 ? single_ms / wall_ms : 0.0, 2);
  }
  bench.print_table(
      "fanout", "short-window fan-out, lp-rounding box, n=" +
                    std::to_string(params.n) + ", horizon=" +
                    std::to_string(params.horizon) +
                    ", hardware cores: " + std::to_string(cores));

  const double speedup = four_ms > 0.0 ? single_ms / four_ms : 0.0;
  bench.metric("speedup_4_threads", speedup);
  bench.metric("hardware_cores", static_cast<double>(cores));
  bench.check("all thread counts feasible", all_feasible);
  bench.check("schedule byte-identical across thread counts", all_identical);
  if (cores >= 4) {
    bench.check("4-thread solve >= 2x single-thread", speedup >= 2.0);
  }

  // --- Part B: warm-started rhs sweep ----------------------------------
  Table& sweep = bench.table(
      "warmstart", {"capacity", "cold-pivots", "warm-pivots", "warm?",
                    "objective", "oracle-agrees"});
  WarmStart warm;
  SimplexWorkspace workspace;
  std::int64_t cold_total = 0;
  std::int64_t warm_total = 0;
  int accepted = 0;
  bool oracle_ok = true;
  for (int capacity = 30; capacity >= 8; --capacity) {
    const LpModel model = sweep_model(capacity);
    SimplexOptions cold_options;
    cold_options.engine = LpEngine::kRevised;
    const LpSolution cold = solve_lp(model, cold_options);

    SimplexOptions warm_options;
    warm_options.engine = LpEngine::kRevised;
    warm_options.warm_start = &warm;
    warm_options.workspace = &workspace;
    const LpSolution chained = solve_lp(model, warm_options);

    SimplexOptions dense_options;
    dense_options.engine = LpEngine::kDenseTableau;
    const LpSolution oracle = solve_lp(model, dense_options);

    const bool agrees = cold.status == LpStatus::kOptimal &&
                        chained.status == LpStatus::kOptimal &&
                        oracle.status == LpStatus::kOptimal &&
                        std::abs(chained.objective - oracle.objective) < 1e-6 &&
                        std::abs(cold.objective - oracle.objective) < 1e-6;
    oracle_ok = oracle_ok && agrees;
    cold_total += total_pivots(cold);
    warm_total += total_pivots(chained);
    accepted += chained.warm_started ? 1 : 0;
    sweep.row()
        .cell(std::int64_t{capacity})
        .cell(total_pivots(cold))
        .cell(total_pivots(chained))
        .cell(std::string(chained.warm_started ? "yes" : "no"))
        .cell(chained.objective, 3)
        .cell(std::string(agrees ? "yes" : "NO"));
  }
  bench.print_table("warmstart",
                    "m'-style capacity sweep, one WarmStart + "
                    "SimplexWorkspace chained through every step");

  // Straight re-solves of one model: after the first solve the exported
  // basis is optimal, so every re-solve should cost zero Phase-1 pivots.
  WarmStart resolve_warm;
  SimplexWorkspace resolve_workspace;
  const LpModel fixed = sweep_model(20);
  std::int64_t resolve_phase1 = 0;
  bool resolved_warm = true;
  for (int repeat = 0; repeat < 5; ++repeat) {
    SimplexOptions options;
    options.engine = LpEngine::kRevised;
    options.warm_start = &resolve_warm;
    options.workspace = &resolve_workspace;
    const LpSolution solution = solve_lp(fixed, options);
    if (repeat > 0) {
      resolve_phase1 += solution.phase1_pivots;
      resolved_warm = resolved_warm && solution.warm_started;
    }
  }

  const double reduction =
      cold_total > 0
          ? 1.0 - static_cast<double>(warm_total) /
                      static_cast<double>(cold_total)
          : 0.0;
  bench.metric("cold_total_pivots", static_cast<double>(cold_total));
  bench.metric("warm_total_pivots", static_cast<double>(warm_total));
  bench.metric("warm_accepted_steps", static_cast<double>(accepted));
  bench.metric("pivot_reduction", reduction);
  bench.check("warm-chained sweep matches the dense oracle", oracle_ok);
  bench.check("warm chaining reduces total pivots", warm_total < cold_total);
  bench.check("re-solves accept the exported basis", resolved_warm);
  bench.check("re-solves need zero phase-1 pivots", resolve_phase1 == 0);

  bench.note(
      "the interval fan-out merges per-task results and scratch traces in "
      "interval order, so the schedule bytes are identical at every thread "
      "count; 4-thread speedup on this machine: " +
      format_double(speedup, 2) + "x (" + std::to_string(cores) +
      " hardware cores; the >= 2x bar applies on machines with >= 4 cores, "
      "where the disjoint intervals solve independently). Warm-chaining one "
      "basis through the capacity sweep cut total pivots from " +
      std::to_string(cold_total) + " to " + std::to_string(warm_total) +
      " (" + format_double(100.0 * reduction, 1) +
      "% fewer), and re-solving an unchanged model skips Phase 1 entirely.");
  return bench.finish();
}

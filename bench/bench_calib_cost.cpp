// Experiment E16 — calibration-cost model: greedy quality vs the exact
// cost optimum across type-table regimes.
//
// For each CalibTableRegime (cheap-short, expensive-long, delayed) this
// sweeps small single-machine instances, solves each with the lazy greedy
// (greedy-calib-cost) and the subset DP (dp-calib-cost), and reports the
// cost ratio on instances both solved. A second differential sweep checks
// the DP against the independent branch-and-bound oracle
// (exact-calib-cost) on every instance both complete: the two exact
// solvers must agree on the optimal total cost exactly.
//
// Self-checks: every schedule verifier-clean (enforced by the registry
// adapters), greedy never beats the DP's optimal cost, and DP == oracle
// on all differential instances.
#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "calib/cost_dp.hpp"
#include "calib/exact_cost.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "runtime/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace calisched;

struct RegimeCase {
  CalibTableRegime regime;
  const char* name;
};

constexpr RegimeCase kRegimes[] = {
    {CalibTableRegime::kCheapShort, "cheap-short"},
    {CalibTableRegime::kExpensiveLong, "expensive-long"},
    {CalibTableRegime::kDelayed, "delayed"},
};

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E16", "calibration-cost model: greedy vs exact cost",
                     argc, argv);
  const std::size_t count =
      static_cast<std::size_t>(bench.args().get_int("count", 12));

  const AlgorithmRegistry& registry = AlgorithmRegistry::builtin();
  const Algorithm* greedy = registry.find("greedy-calib-cost");
  const Algorithm* dp = registry.find("dp-calib-cost");

  Table& quality = bench.table(
      "quality", {"regime", "instances", "dp-solved", "greedy-solved",
                  "mean-ratio", "max-ratio"});

  bool all_verified = true;
  bool greedy_never_beats_dp = true;
  for (const RegimeCase& regime : kRegimes) {
    std::vector<std::int64_t> dp_cost(count, -1);
    std::vector<std::int64_t> greedy_cost(count, -1);
    std::mutex mutex;
    bench.sweep(count, [&](std::size_t i) {
      GenParams params;
      params.seed = 0xE16 + i * 131 + static_cast<std::size_t>(regime.regime);
      params.n = 5;
      params.T = 6;
      params.machines = 1;
      params.horizon = 48;
      params.max_proc = 5;
      const Instance instance = generate_calib_cost(params, regime.regime);
      const RunResult dp_result = dp->run(instance);
      const RunResult greedy_result = greedy->run(instance);
      std::lock_guard<std::mutex> lock(mutex);
      if (dp_result.feasible) {
        dp_cost[i] = dp_result.total_cost;
        if (!dp_result.verified) all_verified = false;
      }
      if (greedy_result.feasible) {
        greedy_cost[i] = greedy_result.total_cost;
        if (!greedy_result.verified) all_verified = false;
      }
    });
    std::size_t dp_solved = 0;
    std::size_t greedy_solved = 0;
    double ratio_sum = 0.0;
    double ratio_max = 0.0;
    std::size_t both = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (dp_cost[i] >= 0) ++dp_solved;
      if (greedy_cost[i] >= 0) ++greedy_solved;
      if (dp_cost[i] > 0 && greedy_cost[i] > 0) {
        if (greedy_cost[i] < dp_cost[i]) greedy_never_beats_dp = false;
        const double ratio = static_cast<double>(greedy_cost[i]) /
                             static_cast<double>(dp_cost[i]);
        ratio_sum += ratio;
        ratio_max = std::max(ratio_max, ratio);
        ++both;
      }
    }
    quality.row()
        .cell(regime.name)
        .cell(static_cast<std::int64_t>(count))
        .cell(static_cast<std::int64_t>(dp_solved))
        .cell(static_cast<std::int64_t>(greedy_solved))
        .cell(both > 0 ? ratio_sum / static_cast<double>(both) : 0.0, 3)
        .cell(ratio_max, 3);
    bench.metric(std::string("max_ratio_") + regime.name, ratio_max);
  }
  bench.print_table("quality", "greedy-calib-cost vs dp-calib-cost (cost)");

  // --- DP vs oracle differential: exact solvers must agree exactly -------
  const std::size_t diff_count =
      static_cast<std::size_t>(bench.args().get_int("diff-count", 18));
  std::size_t compared = 0;
  std::size_t agreed = 0;
  std::mutex diff_mutex;
  bench.sweep(diff_count, [&](std::size_t i) {
    GenParams params;
    params.seed = 0xD1FF + i * 977;
    params.n = 4;
    params.T = 5;
    params.machines = 1;
    params.horizon = 20;
    params.max_proc = 4;
    const Instance instance = generate_calib_cost(
        params, kRegimes[i % 3].regime);
    const CostDpResult dp_result = solve_cost_dp(instance);
    const CalibCostResult oracle = solve_exact_calib_cost(instance);
    std::lock_guard<std::mutex> lock(diff_mutex);
    if (!dp_result.solved || !oracle.solved) return;  // budget-limited
    ++compared;
    const bool same_feasibility = dp_result.feasible == oracle.feasible;
    const bool same_cost =
        !dp_result.feasible || dp_result.total_cost == oracle.total_cost;
    if (same_feasibility && same_cost) ++agreed;
  });
  bench.metric("differential_compared", static_cast<double>(compared));
  bench.metric("differential_agreed", static_cast<double>(agreed));

  bench.check("all_results_verified", all_verified);
  bench.check("greedy_never_beats_dp", greedy_never_beats_dp);
  bench.check("dp_matches_oracle", compared > 0 && agreed == compared);
  bench.note(
      "The lazy greedy tracks the optimum closely when cheap short "
      "calibrations suffice and pays a visible premium in the delayed "
      "regime, where late activation shrinks the usable window it bets on. "
      "The two independent exact solvers (subset DP and branch-and-bound "
      "oracle) agree on feasibility and optimal total cost on every "
      "differential instance they both complete.");
  return bench.finish();
}

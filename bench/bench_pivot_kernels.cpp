// Experiment E17 — pivot-kernel microbenchmarks.
//
// The engine-level speedup claims (E12) bundle pricing, FTRAN/BTRAN, and
// refactorization into one wall-clock number; this bench isolates the
// pieces so a kernel regression is visible before it dilutes into an
// end-to-end average. Two layers:
//
//  * Solve layer — the largest E12 TISE LP, solved repeatedly against a
//    deliberately cold workspace (fresh arena per solve) and a warm one
//    (single arena reused). The warm phase is the allocation assertion
//    the sanitizer jobs lean on: after one warmup solve, a reused
//    workspace must report zero buffer growths — the arena has reached
//    the family's working size and the pivot loop allocates nothing.
//  * Kernel layer — synthetic CscMatrix / EtaFile instances exercising
//    gather-dot pricing, FTRAN, and BTRAN in fixed-repetition loops, so
//    the streamed-entry totals are machine-independent (gated) while the
//    entries/s rates track this machine's memory system (advisory).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "longwin/tise_lp.hpp"
#include "lp/perf_counters.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "lp/sparse.hpp"

namespace {

using namespace calisched;

/// Keeps kernel results observable so the optimizer cannot delete them.
volatile double g_sink = 0.0;

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1e6;
}

/// Deterministic 64-bit generator (splitmix64): the synthetic kernel
/// operands must be identical on every machine so the streamed-entry
/// totals can gate the regression checker.
struct SplitMix {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  int below(int bound) { return static_cast<int>(next() % static_cast<std::uint64_t>(bound)); }
  /// Uniform in [-0.5, 0.5): small values keep repeated eta applications
  /// numerically tame.
  double small() { return static_cast<double>(next() >> 11) / 9007199254740992.0 - 0.5; }
};

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E17", "pivot-kernel microbenchmarks", argc, argv);

  // --- solve layer: cold vs warm workspace on the largest E12 LP ---------
  GenParams params;
  params.seed = 42 + 32;
  params.n = 32;
  params.T = 10;
  params.machines = 2;
  params.horizon = 10 * params.T;
  params.max_proc = 10;
  const Instance instance = generate_long_window(params);
  const TiseLpModel built = build_tise_lp(instance, 3 * instance.machines);

  SimplexOptions dense_options;
  dense_options.engine = LpEngine::kDenseTableau;
  const LpSolution oracle = solve_lp(built.model, dense_options);

  SimplexOptions revised_options;
  revised_options.engine = LpEngine::kRevised;

  constexpr int kSolveReps = 5;
  double cold_objective = 0.0;

  const LpPerfCounters cold_before = lp_perf_snapshot();
  const auto cold_start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kSolveReps; ++rep) {
    SimplexWorkspace fresh;  // new arena per solve: every buffer regrows
    revised_options.workspace = &fresh;
    const LpSolution solution = solve_lp(built.model, revised_options);
    cold_objective = solution.objective;
  }
  const double cold_ms = wall_ms_since(cold_start);
  bench.lp_counters("cold", lp_perf_snapshot() - cold_before, cold_ms,
                    /*record_metrics=*/false);

  SimplexWorkspace shared;
  revised_options.workspace = &shared;
  double warm_objective = 0.0;
  warm_objective = solve_lp(built.model, revised_options).objective;  // warmup
  const LpPerfCounters warm_before = lp_perf_snapshot();
  const auto warm_start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kSolveReps; ++rep) {
    warm_objective = solve_lp(built.model, revised_options).objective;
  }
  const double warm_ms = wall_ms_since(warm_start);
  const LpPerfCounters warm_delta = lp_perf_snapshot() - warm_before;
  bench.lp_counters("warm", warm_delta, warm_ms);
  bench.print_table("lp_counters",
                    "n=32 TISE LP x" + std::to_string(kSolveReps) +
                        ": fresh arena per solve vs one reused arena");

  bench.check("revised matches dense oracle",
              oracle.status == LpStatus::kOptimal &&
                  std::fabs(cold_objective - oracle.objective) <= 1e-6 &&
                  std::fabs(warm_objective - oracle.objective) <= 1e-6);
  // The sanitizer jobs run this binary for these two checks: a reused
  // arena at working size must stop allocating entirely.
  bench.check("warm workspace stops allocating",
              warm_delta.buffer_growths == 0);
  bench.check("warm solves all reuse the workspace",
              warm_delta.workspace_reuses == kSolveReps);

  // --- kernel layer: synthetic operands, fixed repetition counts ---------
  constexpr int kRows = 1024;       // dense vector length
  constexpr int kCols = 2048;       // pricing matrix columns
  constexpr int kNnzPerCol = 8;     // nonzeros per column / off-pivot per eta
  constexpr int kEtas = 512;        // eta file length
  constexpr int kKernelReps = 400;  // fixed: totals must be deterministic

  SplitMix rng{0xE17ULL};
  CscMatrix matrix;
  matrix.reserve(kCols, static_cast<std::size_t>(kCols) * kNnzPerCol);
  for (int c = 0; c < kCols; ++c) {
    matrix.begin_column();
    for (int k = 0; k < kNnzPerCol; ++k) {
      matrix.push(rng.below(kRows), rng.small());
    }
  }
  EtaFile etas;
  for (int e = 0; e < kEtas; ++e) {
    etas.begin_eta(rng.below(kRows), 1.0 + rng.small());
    for (int k = 0; k < kNnzPerCol; ++k) {
      etas.push(rng.below(kRows), rng.small());
    }
  }
  std::vector<double> seed_vector(kRows);
  for (double& x : seed_vector) x = rng.small();

  Table& kernels = bench.table(
      "kernels", {"kernel", "reps", "entries", "entries_per_s", "checksum"});
  const auto run_kernel = [&](const std::string& name, auto&& body,
                              auto&& drain) {
    // One untimed pass warms the cache and drains stale tallies.
    body();
    (void)drain();
    double checksum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kKernelReps; ++rep) checksum = body();
    const double ms = wall_ms_since(start);
    const KernelStats stats = drain();
    const double entries_per_s =
        ms > 0.0 ? static_cast<double>(stats.entries) / (ms / 1e3) : 0.0;
    kernels.row()
        .cell(name)
        .cell(kKernelReps)
        .cell(stats.entries)
        .cell(entries_per_s, 0)
        .cell(checksum, 6);
    bench.metric(name + "_entries", static_cast<double>(stats.entries));
    bench.metric(name + "_entries_per_s", entries_per_s);
    bench.check(name + " checksum finite", std::isfinite(checksum));
    g_sink = checksum;
    return checksum;
  };

  std::vector<double> work = seed_vector;
  const double pricing_first = run_kernel(
      "pricing_gather_dot",
      [&] {
        double total = 0.0;
        matrix.dot_range(0, kCols, seed_vector, [](int) { return false; },
                         [&](int, double dot) { total += dot; });
        return total;
      },
      [&] { return matrix.take_stats(); });
  const double ftran_first = run_kernel(
      "ftran",
      [&] {
        work = seed_vector;  // reset: repeated application must not compound
        etas.ftran(work);
        double total = 0.0;
        for (const double x : work) total += x;
        return total;
      },
      [&] { return etas.take_stats(); });
  const double btran_first = run_kernel(
      "btran",
      [&] {
        work = seed_vector;
        etas.btran(work);
        double total = 0.0;
        for (const double x : work) total += x;
        return total;
      },
      [&] { return etas.take_stats(); });
  bench.print_table("kernels",
                    "synthetic operands (" + std::to_string(kRows) +
                        " rows, " + std::to_string(kCols) + " columns, " +
                        std::to_string(kEtas) +
                        " etas), fixed-rep loops; entry totals gate, rates "
                        "are advisory");

  // Re-run each kernel once and require bit-identical results: the
  // unrolled/reassociated kernels must stay deterministic on one machine.
  double pricing_again = 0.0;
  matrix.dot_range(0, kCols, seed_vector, [](int) { return false; },
                   [&](int, double dot) { pricing_again += dot; });
  (void)matrix.take_stats();
  work = seed_vector;
  etas.ftran(work);
  double ftran_again = 0.0;
  for (const double x : work) ftran_again += x;
  work = seed_vector;
  etas.btran(work);
  double btran_again = 0.0;
  for (const double x : work) btran_again += x;
  (void)etas.take_stats();
  bench.check("kernel results reproducible",
              pricing_again == pricing_first && ftran_again == ftran_first &&
                  btran_again == btran_first);

  bench.note(
      "cold-vs-warm isolates the arena: identical pivot counts and "
      "objectives, but the reused workspace reports zero buffer growths "
      "after warmup while every cold solve regrows its buffers. The kernel "
      "loops pin the streamed-entry totals (deterministic, gated) next to "
      "this machine's achieved entries/s (advisory).");
  return bench.finish();
}

// Experiment F1 — Figure 1: the Lemma 2 ISE -> TISE transformation.
//
// Reproduces the figure from live algorithm output on the paper-shaped
// fixture, then checks the lemma's accounting (3x machines, 3x
// calibrations, TISE-feasible) on randomized long-window instances whose
// ISE schedules come from the exact solver.
#include <iostream>

#include "baselines/exact_ise.hpp"
#include "gen/generators.hpp"
#include "gen/paper_figures.hpp"
#include "harness.hpp"
#include "longwin/trim_transform.hpp"
#include "report/ascii_gantt.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("F1", "Lemma 2 transformation (Figure 1)", argc, argv);

  // --- the paper's illustration -------------------------------------------
  const Instance f1 = figure1_instance();
  const Schedule ise = figure1_ise_schedule();
  std::cout << render_windows(f1) << '\n'
            << "ISE schedule (1 machine, 2 calibrations):\n"
            << render_schedule(f1, ise) << '\n';
  const auto tise = trim_transform(f1, ise);
  bench.check("figure1-transform", tise.has_value());
  if (!tise) return bench.finish();
  std::cout << "TISE schedule (3 machines, 6 calibrations):\n"
            << render_schedule(f1, *tise) << '\n';

  // --- randomized accounting check ----------------------------------------
  Table& table = bench.table(
      "accounting", {"seed", "n", "ise-cals", "tise-cals", "tise-machines",
                     "tise-valid", "bound-3x"});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 5;
    params.T = 6;
    params.machines = 1;
    params.horizon = 30;
    params.max_proc = 5;
    const Instance instance = generate_long_window(params, 2, 4);
    const ExactIseResult exact = solve_exact_ise(instance);
    if (!exact.solved || !exact.feasible) continue;
    const auto transformed = trim_transform(instance, exact.schedule);
    const bool ok = transformed.has_value() &&
                    verify_tise(instance, *transformed).ok();
    bench.check("tise-valid-seed-" + std::to_string(seed), ok);
    table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(exact.optimal_calibrations)
        .cell(transformed ? transformed->num_calibrations() : 0)
        .cell(transformed ? std::int64_t{transformed->machines} : 0)
        .cell(ok)
        .cell(transformed &&
              transformed->num_calibrations() == 3 * exact.optimal_calibrations &&
              transformed->machines == 3 * exact.schedule.machines);
  }
  bench.print_table("accounting", "Lemma 2 accounting on exact ISE schedules");
  return bench.finish();
}

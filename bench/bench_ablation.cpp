// Experiment A1 — ablations of the paper's design choices.
//
// (a) Trim multiplier. Lemma 2 justifies solving the TISE LP on m' = 3m
//     machines. Smaller multipliers risk LP infeasibility (the trimmed
//     problem genuinely needs more machines); larger ones waste hardware.
// (b) Long-pipeline constants. The conclusions note "some of the
//     constants in the reduction could be reduced": adaptive mirroring
//     (skip Lemma 9's doubling when plain EDF already completes) and
//     empty-calibration pruning recover much of the 2x-2x overhead while
//     preserving the guarantee (fallback path unchanged).
// (c) Short-window calibration policy. Footnote 3's relaxed model
//     (overlapping calibrations allowed) removes the crossing machines;
//     trimming unused calendar slots removes Lemma 19's 2*gamma charge
//     for empty slots.
#include "gen/generators.hpp"
#include "harness.hpp"
#include "longwin/edf_assign.hpp"
#include "longwin/fractional_edf.hpp"
#include "longwin/long_pipeline.hpp"
#include "longwin/rounding.hpp"
#include "shortwin/short_pipeline.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("A1", "ablations of design choices", argc, argv);

  // ---- (a) trim multiplier ---------------------------------------------------
  Table& trim = bench.table(
      "trim", {"seed", "m'-multiplier", "LP-status", "LP-obj", "total-cals",
               "verified"});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 12;
    params.T = 10;
    params.machines = 1;
    params.horizon = 80;
    params.max_proc = 10;
    const Instance instance = generate_long_window(params);
    for (const int multiplier : {1, 2, 3}) {
      LongWindowOptions options;
      options.trim_multiplier = multiplier;
      const LongWindowResult result = solve_long_window(instance, options);
      trim.row()
          .cell(static_cast<std::int64_t>(seed))
          .cell(std::int64_t{multiplier})
          .cell(result.feasible ? "optimal" : "infeasible")
          .cell(result.telemetry.lp_objective, 2)
          .cell(result.feasible
                    ? std::to_string(result.telemetry.total_calibrations)
                    : std::string("-"))
          .cell(!result.feasible ||
                verify_tise(instance, result.schedule).ok());
    }
  }
  bench.print_table(
      "trim", "(a) TISE machine multiplier m' = k*m (Lemma 2 uses k=3)");

  // ---- (b) long-pipeline constants -------------------------------------------
  Table& longopt = bench.table(
      "longopt", {"seed", "n", "paper", "+adaptive-mirror", "+prune-empty",
                  "+both", "all-verified"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 10 + static_cast<int>(seed % 6);
    params.T = 10;
    params.machines = 2;
    params.horizon = 100;
    params.max_proc = 10;
    const Instance instance = generate_long_window(params);
    std::size_t cals[4] = {0, 0, 0, 0};
    bool verified = true;
    int variant = 0;
    for (const bool adaptive : {false, true}) {
      for (const bool prune : {false, true}) {
        LongWindowOptions options;
        options.adaptive_mirror = adaptive;
        options.prune_empty_calibrations = prune;
        const LongWindowResult result = solve_long_window(instance, options);
        if (!result.feasible) {
          verified = false;
          continue;
        }
        cals[variant] = result.telemetry.total_calibrations;
        verified = verified && verify_tise(instance, result.schedule).ok();
        ++variant;
      }
    }
    bench.check("longopt-seed-" + std::to_string(seed), verified);
    longopt.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(cals[0])   // paper: no adaptive, no prune
        .cell(cals[2])   // adaptive only
        .cell(cals[1])   // prune only
        .cell(cals[3])   // both
        .cell(verified);
  }
  bench.print_table("longopt",
                    "(b) long-pipeline calibrations under constant-saving "
                    "optimizations");

  // ---- (c) short-window policy -------------------------------------------------
  Table& shortopt = bench.table(
      "shortopt", {"seed", "n", "paper-cals", "paper-machines", "trimmed-cals",
                   "relaxed-cals", "relaxed-machines", "all-verified"});
  const GreedyEdfMM mm;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 14;
    params.T = 10;
    params.machines = 2;
    params.horizon = 120;
    params.max_proc = 9;
    const Instance instance = generate_short_window(params);

    IntervalOptions paper;
    const ShortWindowResult base = solve_short_window(instance, mm, paper);

    IntervalOptions trimmed;
    trimmed.trim_unused_calibrations = true;
    const ShortWindowResult trim_result = solve_short_window(instance, mm, trimmed);

    IntervalOptions relaxed;
    relaxed.relaxed_calibrations = true;
    relaxed.trim_unused_calibrations = true;
    const ShortWindowResult relax_result =
        solve_short_window(instance, mm, relaxed);

    const bool verified =
        base.feasible && trim_result.feasible && relax_result.feasible &&
        verify_ise(instance, base.schedule).ok() &&
        verify_ise(instance, trim_result.schedule).ok() &&
        verify_ise(instance, relax_result.schedule, /*require_tise=*/false,
                   CalibrationPolicy::kOverlapAllowed)
            .ok();
    bench.check("shortopt-seed-" + std::to_string(seed), verified);
    shortopt.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(base.telemetry.total_calibrations)
        .cell(std::int64_t{base.schedule.machines_used()})
        .cell(trim_result.telemetry.total_calibrations)
        .cell(relax_result.telemetry.total_calibrations)
        .cell(std::int64_t{relax_result.schedule.machines_used()})
        .cell(verified);
  }
  bench.print_table("shortopt",
                    "(c) short-window: paper vs trimmed calendars vs "
                    "footnote-3 relaxed calibrations");

  // ---- (d) job-assignment backend: Algorithm 2 vs Lemma 9 --------------------
  // The paper: "we could instead use the algorithm of Lemma 9 in place of
  // Algorithm 2. But we think Algorithm 2 is more natural." Both run on the
  // same rounded calendar; we compare job-hosting calibrations and jobs
  // pushed to mirror machines.
  Table& backend = bench.table(
      "backend", {"seed", "n", "alg2 hosting-cals", "lemma9 hosting-cals",
                  "lemma9 mirrored-jobs", "both-verified"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 12;
    params.T = 10;
    params.machines = 2;
    params.horizon = 100;
    params.max_proc = 10;
    const Instance instance = generate_long_window(params);
    const int m_prime = 3 * instance.machines;
    const TiseFractional lp = solve_tise_lp(instance, m_prime);
    if (lp.status != LpStatus::kOptimal) continue;
    const auto starts = round_calibrations(lp.points, lp.calibration_mass);
    const Schedule calendar = assign_round_robin(instance, starts, 3 * m_prime);

    EdfAssignResult alg2 = edf_assign_jobs(instance, calendar);
    const FractionalEdfResult fractional = fractional_edf(instance, calendar);
    IntegerizeResult lemma9 =
        integerize_fractional_edf(instance, calendar, fractional);
    if (!alg2.unassigned.empty() || !lemma9.unassigned.empty()) continue;
    const bool verified = verify_tise(instance, alg2.schedule).ok() &&
                          verify_tise(instance, lemma9.schedule).ok();
    bench.check("backend-seed-" + std::to_string(seed), verified);
    alg2.schedule.prune_empty_calibrations(instance);
    lemma9.schedule.prune_empty_calibrations(instance);
    backend.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(alg2.schedule.num_calibrations())
        .cell(lemma9.schedule.num_calibrations())
        .cell(lemma9.mirrored_jobs)
        .cell(verified);
  }
  bench.print_table("backend",
                    "(d) assignment backend on the same calendar: Algorithm 2 "
                    "vs the Lemma 9 integerization");

  bench.note(
      "Guarantees are unchanged in every variant: adaptive mirroring falls "
      "back to the mirrored run, pruning only removes unused calibrations, "
      "and the relaxed policy is the easier model of footnote 3.");
  return bench.finish();
}

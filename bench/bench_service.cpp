// Experiment E15 — persistent solve service: result cache, backpressure,
// and response determinism.
//
// Three parts, all deterministic in the generator seeds so the counted
// metrics are baseline-stable across machines:
//   * Cache payoff: a wave of unique instances (all misses), then the same
//     wave with every job list permuted — the canonical instance hash makes
//     each permuted duplicate a cache hit, so hits == the number of
//     verified first-wave solves, with no algorithm re-run.
//   * Backpressure: workers paused, a tight queue overfilled — every
//     submission past capacity is rejected synchronously (born-completed
//     handle), and the resumed service drains exactly the admitted ones.
//   * Determinism: one NDJSON script (with duplicates) replayed through the
//     stdio front end at 1/4/8 worker threads must produce byte-identical
//     response streams.
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace calisched;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1e6;
}

GenParams wave_params(std::uint64_t seed, int n) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 8;
  params.machines = 2;
  params.horizon = 80;
  params.max_proc = 7;
  return params;
}

ServiceRequest solve_request(Instance instance) {
  ServiceRequest request;
  request.type = RequestType::kSolve;
  request.instance = std::move(instance);
  return request;
}

std::string solve_line(const Instance& instance, int id) {
  JsonValue::Object request;
  request.emplace_back("type", JsonValue("solve"));
  request.emplace_back("id", JsonValue(std::int64_t{id}));
  request.emplace_back("instance", instance_to_json(instance));
  return JsonValue(std::move(request)).dump(0) + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("E15",
                     "solve service: result cache, backpressure, determinism",
                     argc, argv);
  const int count = static_cast<int>(bench.args().get_int("count", 32));
  const int jobs = static_cast<int>(bench.args().get_int("n", 12));

  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    instances.push_back(
        generate_mixed(wave_params(static_cast<std::uint64_t>(i) + 1, jobs), 0.5));
  }

  // --- Part A: unique wave, then permuted duplicates --------------------
  ServiceOptions options;
  options.threads = 4;
  options.queue_capacity = static_cast<std::size_t>(count) * 2;
  options.cache_capacity = static_cast<std::size_t>(count) * 2;
  // One shard: the every-duplicate-hits check needs the whole capacity as
  // one recency list (splitting it across shards can evict an entry this
  // wave still expects). E19 and the framing tests exercise sharding.
  options.cache_shards = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);

  Table& waves = bench.table(
      "waves", {"wave", "requests", "hits", "misses", "verified", "wall-ms"});

  auto start = std::chrono::steady_clock::now();
  std::vector<SolveService::PendingPtr> pending;
  pending.reserve(instances.size());
  for (const Instance& instance : instances) {
    pending.push_back(service.submit(solve_request(instance)));
  }
  int verified = 0;
  for (const auto& handle : pending) {
    const SolveOutcome& outcome = handle->wait();
    if (outcome.status == SolveStatus::kOk && outcome.feasible &&
        outcome.verified) {
      ++verified;
    }
  }
  const double unique_ms = elapsed_ms(start);
  ServiceStats after_unique = service.stats();
  waves.row()
      .cell(std::string("unique"))
      .cell(std::int64_t{count})
      .cell(after_unique.cache_hits)
      .cell(after_unique.cache_misses)
      .cell(std::int64_t{verified})
      .cell(unique_ms, 1);

  Rng rng(2026);
  start = std::chrono::steady_clock::now();
  pending.clear();
  for (Instance instance : instances) {
    rng.shuffle(instance.jobs);
    pending.push_back(service.submit(solve_request(std::move(instance))));
  }
  for (const auto& handle : pending) (void)handle->wait();
  const double duplicate_ms = elapsed_ms(start);
  const ServiceStats after_duplicates = service.stats();
  waves.row()
      .cell(std::string("permuted-dup"))
      .cell(std::int64_t{count})
      .cell(after_duplicates.cache_hits - after_unique.cache_hits)
      .cell(after_duplicates.cache_misses - after_unique.cache_misses)
      .cell(std::int64_t{verified})
      .cell(duplicate_ms, 1);
  bench.print_table("waves", "two waves of " + std::to_string(count) +
                                 " requests, " + std::to_string(jobs) +
                                 " jobs each, 4 worker threads");

  bench.metric("requests", static_cast<double>(after_duplicates.received));
  bench.metric("verified_solves", static_cast<double>(verified));
  bench.metric("cache_hits", static_cast<double>(after_duplicates.cache_hits));
  bench.metric("cache_misses",
               static_cast<double>(after_duplicates.cache_misses));
  bench.metric("unique_wave_ms", unique_ms);
  bench.metric("duplicate_wave_ms", duplicate_ms);
  bench.metric("latency_p50_ns",
               static_cast<double>(after_duplicates.latency_p50_ns));
  bench.metric("latency_p95_ns",
               static_cast<double>(after_duplicates.latency_p95_ns));
  bench.check("first wave solves verify", verified >= count / 2);
  bench.check("every permuted duplicate hits the cache",
              after_duplicates.cache_hits - after_unique.cache_hits ==
                  verified);
  bench.check("misses only on the unique wave",
              after_duplicates.cache_misses ==
                  static_cast<std::int64_t>(count) +
                      (static_cast<std::int64_t>(count) - verified));
  service.export_stats(&bench.trace());
  service.shutdown(/*drain=*/true);

  // --- Part B: bounded queue under overload -----------------------------
  ServiceOptions tight;
  tight.threads = 1;
  tight.queue_capacity = 8;
  SolveService small(AlgorithmRegistry::builtin(), tight);
  small.pause();
  const int flood = static_cast<int>(tight.queue_capacity) + 6;
  int synchronous_rejects = 0;
  std::vector<SolveService::PendingPtr> flooded;
  flooded.reserve(static_cast<std::size_t>(flood));
  for (int i = 0; i < flood; ++i) {
    flooded.push_back(small.submit(
        solve_request(instances[static_cast<std::size_t>(i) % instances.size()])));
    if (flooded.back()->ready() && flooded.back()->wait().rejected) {
      ++synchronous_rejects;
    }
  }
  small.resume();
  for (const auto& handle : flooded) (void)handle->wait();
  const ServiceStats overload = small.stats();
  small.shutdown(/*drain=*/true);

  Table& backpressure = bench.table(
      "backpressure",
      {"capacity", "submitted", "admitted", "rejected", "completed"});
  backpressure.row()
      .cell(static_cast<std::int64_t>(tight.queue_capacity))
      .cell(std::int64_t{flood})
      .cell(overload.accepted)
      .cell(overload.rejected)
      .cell(overload.completed);
  bench.print_table("backpressure",
                    "paused single worker, queue overfilled past capacity");

  bench.metric("overload_submitted", static_cast<double>(flood));
  bench.metric("overload_rejected", static_cast<double>(overload.rejected));
  bench.check("overflow rejected synchronously",
              synchronous_rejects == flood - static_cast<int>(tight.queue_capacity));
  bench.check("admitted requests all complete",
              overload.completed == static_cast<std::int64_t>(tight.queue_capacity));

  // --- Part C: stdio determinism across thread counts -------------------
  std::string script;
  int id = 0;
  for (int i = 0; i < count; i += 4) {
    script += solve_line(instances[static_cast<std::size_t>(i)], id++);
  }
  for (int i = 0; i < count; i += 8) {
    script += solve_line(instances[static_cast<std::size_t>(i)], id++);  // dup
  }
  std::string reference;
  bool identical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    ServiceOptions stdio_options;
    stdio_options.threads = threads;
    std::istringstream in(script);
    std::ostringstream out;
    (void)run_stdio_server(AlgorithmRegistry::builtin(), stdio_options, in, out);
    if (reference.empty()) {
      reference = out.str();
    } else {
      identical = identical && out.str() == reference;
    }
  }
  bench.metric("stdio_script_lines", static_cast<double>(id));
  bench.check("stdio responses byte-identical at 1/4/8 threads",
              identical && !reference.empty());

  bench.note(
      "the permuted duplicate wave re-submits every instance with its job "
      "list shuffled; the canonical hash folds per-job hashes commutatively, "
      "so all " + std::to_string(verified) +
      " verified first-wave results are served from the LRU cache without "
      "re-running the solver (wave wall time " +
      format_double(unique_ms, 1) + " ms -> " +
      format_double(duplicate_ms, 1) + " ms). With workers paused, the " +
      std::to_string(tight.queue_capacity) + "-slot queue admits exactly its "
      "capacity and rejects the overflow synchronously. The stdio front end "
      "writes responses in request order with no timing fields, so the "
      "response stream is byte-identical at every worker-thread count.");
  return bench.finish();
}

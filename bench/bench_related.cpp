// Experiment E11 — Section 5's contrast: calibrations vs idle-period gaps.
//
// "Since calibrations last a discrete amount of time, the problems are
// subtly different." Two divergences, both measured here on unit jobs and
// one machine (where both optima are computable exactly):
//   * a busy run longer than T is one gap-free block but needs several
//     calibrations (cals grow with work / T; blocks do not), and
//   * a calibration can bridge a short idle stretch for free while a
//     gap-minimizer counts every idle period (blocks can exceed... no —
//     blocks <= cals never holds in general either way; see the table).
// For each instance: minimal busy blocks B (gap minimizer) and minimal
// calibrations C(T) for several T; the columns show C tracking ceil(W/T)
// clustering while B stays put.
#include "baselines/exact_ise.hpp"
#include "baselines/gap_min.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("E11", "calibrations vs gaps (Section 5 related work)",
                     argc, argv);

  // --- the canonical divergence, by hand -------------------------------------
  // Six unit jobs due in one tight burst: one busy block, but with T = 2
  // the block spans three calibrations; with T = 8 a single calibration
  // covers it AND could bridge idle time around it.
  {
    Instance burst;
    burst.machines = 1;
    burst.T = 2;
    for (JobId j = 0; j < 6; ++j) burst.jobs.push_back({j, 0, 8, 1});
    const GapMinResult gaps = solve_min_gaps_unit(burst);
    Table& table = bench.table(
        "burst", {"T", "min-calibrations", "min-busy-blocks"});
    for (const Time T : {Time{2}, Time{3}, Time{6}, Time{8}}) {
      Instance instance = burst;
      instance.T = T;
      const ExactIseResult exact = solve_exact_ise(instance);
      if (!exact.solved || !exact.feasible) continue;
      table.row()
          .cell(T)
          .cell(exact.optimal_calibrations)
          .cell(gaps.feasible ? gaps.busy_blocks : 0);
    }
    bench.print_table("burst", "one 6-unit burst: blocks are T-independent, "
                               "calibrations are not");
  }

  // --- randomized comparison ---------------------------------------------------
  Table& table = bench.table(
      "random", {"seed", "n", "blocks", "cals(T=2)", "cals(T=4)", "cals(T=8)",
                 "cals>=blocks@T>=span", "verified"});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 6;
    params.T = 4;
    params.machines = 1;
    params.horizon = 14;
    const Instance base = generate_unit(params, 8);
    const GapMinResult gaps = solve_min_gaps_unit(base);
    if (!gaps.solved || !gaps.feasible) continue;

    std::size_t cals[3] = {0, 0, 0};
    bool ok = true;
    int index = 0;
    for (const Time T : {Time{2}, Time{4}, Time{8}}) {
      Instance instance = base;
      instance.T = T;
      const ExactIseResult exact = solve_exact_ise(instance);
      if (!exact.solved || !exact.feasible) {
        ok = false;
        break;
      }
      cals[index++] = exact.optimal_calibrations;
      if (!verify_ise(instance, exact.schedule).ok()) ok = false;
    }
    if (!ok) continue;
    // With T at least the busy span, every block fits one calibration but
    // separate blocks may still share one (a calibration may idle), so
    // cals <= blocks there; with tiny T, cals >= blocks. Both compared:
    const bool relation = cals[0] >= gaps.busy_blocks;  // T=2 (tiny)
    bench.check("relation-seed-" + std::to_string(seed), relation);
    table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(base.size())
        .cell(gaps.busy_blocks)
        .cell(cals[0])
        .cell(cals[1])
        .cell(cals[2])
        .cell(relation)
        .cell(true);
  }
  bench.print_table("random", "unit jobs, 1 machine: exact optima side by side");
  bench.note(
      "Reading: with T small, calibrations upper-bound busy blocks (each "
      "block of length L costs >= ceil(L/T) calibrations); with T large, "
      "one calibration can bridge several blocks and the counts cross — "
      "exactly the 'subtly different' relation Section 5 describes.");
  return bench.finish();
}

// Experiment E7 — LP relaxation quality and rounding loss (Lemma 7).
//
// On tiny long-window instances, compares:
//   LP objective        (fractional TISE calibrations on 3m machines)
//   exact TISE optimum  (integral, 3m machines)
//   exact ISE optimum   (integral, m machines)
//   Algorithm-1 output  (rounded calibrations; Lemma 7: <= 2 x LP)
// The integrality gap (TISE* / LP) and the rounding loss (rounded / LP)
// are the two places Section 3 spends its constant factors.
#include "baselines/exact_ise.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "longwin/rounding.hpp"
#include "longwin/tise_lp.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("E7", "LP relaxation quality (Lemma 7)", argc, argv);

  Table& table = bench.table(
      "gaps", {"seed", "n", "LP-obj", "TISE*(3m)", "ISE*(m)", "int-gap",
               "rounded", "rounded<=2xLP", "LP<=TISE*"});
  double worst_int_gap = 0.0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4;
    params.T = 5;
    params.machines = 1;
    params.horizon = 25;
    params.max_proc = 4;
    const Instance instance = generate_long_window(params, 2, 4);
    const int m_prime = 3 * instance.machines;

    const TiseFractional lp = solve_tise_lp(instance, m_prime);
    if (lp.status != LpStatus::kOptimal) continue;
    const auto rounded = round_calibrations(lp.points, lp.calibration_mass);

    Instance tripled = instance;
    tripled.machines = m_prime;
    ExactIseOptions tise_options;
    tise_options.require_tise = true;
    const ExactIseResult tise = solve_exact_ise(tripled, tise_options);
    const ExactIseResult ise = solve_exact_ise(instance);
    if (!tise.solved || !tise.feasible || !ise.solved || !ise.feasible) continue;

    const double int_gap =
        static_cast<double>(tise.optimal_calibrations) / lp.objective;
    worst_int_gap = std::max(worst_int_gap, int_gap);
    bench.check("lemma7-seed-" + std::to_string(seed),
                static_cast<double>(rounded.size()) <=
                        2.0 * lp.objective + 1e-6 &&
                    lp.objective <=
                        static_cast<double>(tise.optimal_calibrations) + 1e-6);
    table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(lp.objective, 3)
        .cell(tise.optimal_calibrations)
        .cell(ise.optimal_calibrations)
        .cell(int_gap, 2)
        .cell(rounded.size())
        .cell(static_cast<double>(rounded.size()) <= 2.0 * lp.objective + 1e-6)
        .cell(lp.objective <= static_cast<double>(tise.optimal_calibrations) +
                                  1e-6);
  }
  bench.print_table("gaps", "tiny long-window instances (T=5, m=1)");
  bench.metric("worst_integrality_gap", worst_int_gap);
  bench.note(
      "worst integrality gap measured: " + format_double(worst_int_gap, 2) +
      "  (the LP lower-bounds the integral TISE optimum; Algorithm 1 pays "
      "at most 2x the LP)");
  return bench.finish();
}

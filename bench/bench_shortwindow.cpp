// Experiment E3 — Theorem 20: the short-window pipeline.
//
// Per instance: runs Algorithm 4 + 5 with both MM black boxes, measures
// the realized alpha of the greedy box against the exact box (per
// interval, aggregated as sum w_greedy / sum w_exact), and checks the
// paper's ceilings:
//   calibrations <= 16 * gamma * alpha * C*   via the Lemma 18 lower
//     bound C* >= sum_i w*_i / 2 (so we check cals <= 32 * alpha * LB with
//     gamma = 2 ... the table reports the tight per-interval version
//     cals <= 4 * gamma * sum w_i),
//   machines   <= 6 * alpha * w*              via w* >= max_i w*_i.
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/schedule_io.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  BenchHarness bench("E3", "short-window pipeline (Theorem 20), gamma = 2",
                     argc, argv);

  const GreedyEdfMM greedy;
  const ExactMM exact;
  const LpRoundingMM lp_rounding;

  Table& table = bench.table(
      "budgets", {"seed", "n", "box", "cals", "machines", "sum-w", "max-w",
                  "cals<=8*sum-w", "machines<=6*max-w", "verified"});
  Table& alpha_table = bench.table(
      "alpha", {"seed", "n", "sum-w greedy", "sum-w exact", "realized-alpha",
                "cals greedy", "cals exact"});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 10 + static_cast<int>(seed % 8);
    params.T = 10;
    params.machines = 2;
    params.horizon = 12 * params.T;
    params.max_proc = 9;
    const Instance instance = generate_short_window(params);

    int greedy_sum_w = 0, exact_sum_w = 0;
    std::size_t greedy_cals = 0, exact_cals = 0;
    for (const MachineMinimizer* mm :
         {static_cast<const MachineMinimizer*>(&greedy),
          static_cast<const MachineMinimizer*>(&lp_rounding),
          static_cast<const MachineMinimizer*>(&exact)}) {
      const ShortWindowResult result = solve_short_window(instance, *mm);
      if (!result.feasible) {
        std::cerr << "seed " << seed << " " << mm->name() << ": "
                  << result.error << '\n';
        bench.check("feasible-seed-" + std::to_string(seed), false);
        return bench.finish();
      }
      const VerifyResult check = verify_ise(instance, result.schedule);
      bench.check("verified-seed-" + std::to_string(seed) + "-" + mm->name(),
                  check.ok());
      table.row()
          .cell(static_cast<std::int64_t>(seed))
          .cell(instance.size())
          .cell(mm->name())
          .cell(result.telemetry.total_calibrations)
          .cell(std::int64_t{result.schedule.machines_used()})
          .cell(std::int64_t{result.telemetry.sum_mm_machines})
          .cell(std::int64_t{result.telemetry.max_mm_machines})
          .cell(result.telemetry.total_calibrations <=
                static_cast<std::size_t>(8 * result.telemetry.sum_mm_machines))
          .cell(result.telemetry.machines_allotted <=
                6 * result.telemetry.max_mm_machines)
          .cell(check.ok());
      if (mm == &greedy) {
        greedy_sum_w = result.telemetry.sum_mm_machines;
        greedy_cals = result.telemetry.total_calibrations;
      } else if (mm == &exact) {
        exact_sum_w = result.telemetry.sum_mm_machines;
        exact_cals = result.telemetry.total_calibrations;
      }
    }
    alpha_table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(std::int64_t{greedy_sum_w})
        .cell(std::int64_t{exact_sum_w})
        .cell(static_cast<double>(greedy_sum_w) /
                  static_cast<double>(exact_sum_w),
              2)
        .cell(greedy_cals)
        .cell(exact_cals);
  }
  bench.print_table("budgets", "Theorem 20 budgets per MM black box");
  std::cout << '\n';

  // --- s-speed augmentation (the third concrete result of Section 1:
  // an s-speed MM box carries its speed through the reduction) ------------
  Table& speed_table = bench.table(
      "speed", {"seed", "n", "s", "box", "machines", "cals", "verified"});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 12;
    params.T = 10;
    params.machines = 2;
    params.horizon = 8 * params.T;
    params.max_proc = 9;
    const Instance instance = generate_short_window(params);
    const auto inner = std::make_shared<ExactMM>();
    for (const std::int64_t s : {std::int64_t{1}, std::int64_t{2}, std::int64_t{3}}) {
      const SpeedupMM box(inner, s);
      const ShortWindowResult result = solve_short_window(instance, box);
      if (!result.feasible) continue;
      speed_table.row()
          .cell(static_cast<std::int64_t>(seed))
          .cell(instance.size())
          .cell(s)
          .cell(box.name())
          .cell(std::int64_t{result.schedule.machines_used()})
          .cell(result.telemetry.total_calibrations)
          .cell(verify_ise(instance, result.schedule).ok());
    }
  }
  bench.print_table("speed",
                    "speed augmentation: faster machines buy fewer machines "
                    "(calibration calendars shrink with w)");
  std::cout << '\n';
  bench.print_table("alpha",
                    "realized alpha of greedy EDF vs exact MM (per-interval "
                    "machine mass)");

  // --- parallel fan-out determinism (the deep measurement is E14) --------
  {
    GenParams params;
    params.seed = 7;
    params.n = 24;
    params.T = 10;
    params.machines = 2;
    params.horizon = 40 * params.T;
    params.max_proc = 9;
    const Instance instance = generate_short_window(params);
    std::string reference;
    bool identical = true;
    for (const int threads : {1, 4}) {
      IntervalOptions options;
      options.threads = threads;
      const ShortWindowResult result =
          solve_short_window(instance, greedy, options);
      if (!result.feasible) {
        identical = false;
        break;
      }
      std::ostringstream bytes;
      write_schedule(bytes, result.schedule);
      if (threads == 1) reference = bytes.str();
      identical = identical && bytes.str() == reference;
    }
    bench.check("parallel fan-out reproduces the sequential schedule",
                identical);
  }
  bench.note(
      "Lemma 18: C* >= sum_i w*_i / 2, so 'cals exact' / ('sum-w exact'/2) "
      "bounds the true approximation ratio from above.");
  return bench.finish();
}

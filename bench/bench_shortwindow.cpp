// Experiment E3 — Theorem 20: the short-window pipeline.
//
// Per instance: runs Algorithm 4 + 5 with both MM black boxes, measures
// the realized alpha of the greedy box against the exact box (per
// interval, aggregated as sum w_greedy / sum w_exact), and checks the
// paper's ceilings:
//   calibrations <= 16 * gamma * alpha * C*   via the Lemma 18 lower
//     bound C* >= sum_i w*_i / 2 (so we check cals <= 32 * alpha * LB with
//     gamma = 2 ... the table reports the tight per-interval version
//     cals <= 4 * gamma * sum w_i),
//   machines   <= 6 * alpha * w*              via w* >= max_i w*_i.
#include <iostream>
#include <memory>

#include "gen/generators.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "util/table.hpp"
#include "verify/verify.hpp"

int main() {
  using namespace calisched;
  std::cout << "E3: short-window pipeline (Theorem 20), gamma = 2\n\n";

  const GreedyEdfMM greedy;
  const ExactMM exact;
  const LpRoundingMM lp_rounding;

  Table table({"seed", "n", "box", "cals", "machines", "sum-w", "max-w",
               "cals<=8*sum-w", "machines<=6*max-w", "verified"});
  Table alpha_table({"seed", "n", "sum-w greedy", "sum-w exact",
                     "realized-alpha", "cals greedy", "cals exact"});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 10 + static_cast<int>(seed % 8);
    params.T = 10;
    params.machines = 2;
    params.horizon = 12 * params.T;
    params.max_proc = 9;
    const Instance instance = generate_short_window(params);

    int greedy_sum_w = 0, exact_sum_w = 0;
    std::size_t greedy_cals = 0, exact_cals = 0;
    for (const MachineMinimizer* mm :
         {static_cast<const MachineMinimizer*>(&greedy),
          static_cast<const MachineMinimizer*>(&lp_rounding),
          static_cast<const MachineMinimizer*>(&exact)}) {
      const ShortWindowResult result = solve_short_window(instance, *mm);
      if (!result.feasible) {
        std::cerr << "seed " << seed << " " << mm->name() << ": "
                  << result.error << '\n';
        return 1;
      }
      const VerifyResult check = verify_ise(instance, result.schedule);
      table.row()
          .cell(static_cast<std::int64_t>(seed))
          .cell(instance.size())
          .cell(mm->name())
          .cell(result.telemetry.total_calibrations)
          .cell(std::int64_t{result.schedule.machines_used()})
          .cell(std::int64_t{result.telemetry.sum_mm_machines})
          .cell(std::int64_t{result.telemetry.max_mm_machines})
          .cell(result.telemetry.total_calibrations <=
                static_cast<std::size_t>(8 * result.telemetry.sum_mm_machines))
          .cell(result.telemetry.machines_allotted <=
                6 * result.telemetry.max_mm_machines)
          .cell(check.ok());
      if (mm == &greedy) {
        greedy_sum_w = result.telemetry.sum_mm_machines;
        greedy_cals = result.telemetry.total_calibrations;
      } else if (mm == &exact) {
        exact_sum_w = result.telemetry.sum_mm_machines;
        exact_cals = result.telemetry.total_calibrations;
      }
    }
    alpha_table.row()
        .cell(static_cast<std::int64_t>(seed))
        .cell(instance.size())
        .cell(std::int64_t{greedy_sum_w})
        .cell(std::int64_t{exact_sum_w})
        .cell(static_cast<double>(greedy_sum_w) /
                  static_cast<double>(exact_sum_w),
              2)
        .cell(greedy_cals)
        .cell(exact_cals);
  }
  table.print(std::cout, "Theorem 20 budgets per MM black box");
  std::cout << '\n';

  // --- s-speed augmentation (the third concrete result of Section 1:
  // an s-speed MM box carries its speed through the reduction) ------------
  Table speed_table({"seed", "n", "s", "box", "machines", "cals", "verified"});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 12;
    params.T = 10;
    params.machines = 2;
    params.horizon = 8 * params.T;
    params.max_proc = 9;
    const Instance instance = generate_short_window(params);
    const auto inner = std::make_shared<ExactMM>();
    for (const std::int64_t s : {std::int64_t{1}, std::int64_t{2}, std::int64_t{3}}) {
      const SpeedupMM box(inner, s);
      const ShortWindowResult result = solve_short_window(instance, box);
      if (!result.feasible) continue;
      speed_table.row()
          .cell(static_cast<std::int64_t>(seed))
          .cell(instance.size())
          .cell(s)
          .cell(box.name())
          .cell(std::int64_t{result.schedule.machines_used()})
          .cell(result.telemetry.total_calibrations)
          .cell(verify_ise(instance, result.schedule).ok());
    }
  }
  speed_table.print(std::cout,
                    "speed augmentation: faster machines buy fewer machines "
                    "(calibration calendars shrink with w)");
  std::cout << '\n';
  alpha_table.print(std::cout,
                    "realized alpha of greedy EDF vs exact MM (per-interval "
                    "machine mass)");
  std::cout << "\nLemma 18: C* >= sum_i w*_i / 2, so 'cals exact' / "
               "('sum-w exact'/2) bounds the true approximation ratio from "
               "above.\n";
  return 0;
}

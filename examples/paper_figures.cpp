// Regenerates the paper's three illustrative figures from live algorithm
// output (see also bench_fig*_ binaries, which add the checked tables).
#include <iostream>

#include "gen/paper_figures.hpp"
#include "longwin/fractional_witness.hpp"
#include "longwin/rounding.hpp"
#include "longwin/tise_lp.hpp"
#include "longwin/trim_transform.hpp"
#include "report/ascii_gantt.hpp"
#include "verify/verify.hpp"

int main() {
  using namespace calisched;

  // ---- Figure 1: ISE -> TISE transformation (Lemma 2) ---------------------
  const Instance f1 = figure1_instance();
  const Schedule ise = figure1_ise_schedule();
  std::cout << "=== Figure 1(A): job windows ===\n"
            << render_windows(f1) << '\n';
  std::cout << "=== Figure 1(B): feasible ISE schedule, 1 machine ===\n"
            << render_schedule(f1, ise) << '\n';
  const auto tise = trim_transform(f1, ise);
  if (!tise || !verify_tise(f1, *tise).ok()) {
    std::cerr << "Lemma 2 transformation failed\n";
    return 1;
  }
  std::cout << "=== Figure 1(C): constructed TISE schedule, 3 machines ===\n"
            << "(machine 0 = i', 1 = i+, 2 = i-; jobs 1 and 5 advanced, "
               "job 7 delayed)\n"
            << render_schedule(f1, *tise) << '\n';

  // ---- Figure 2: Algorithm 1 rounding --------------------------------------
  const FractionalProfile profile = figure2_profile();
  std::cout << "=== Figure 2: calibration rounding (Algorithm 1) ===\n";
  double running = 0.0;
  for (std::size_t i = 0; i < profile.points.size(); ++i) {
    running += profile.mass[i];
    std::cout << "  t=" << profile.points[i] << "  C_t=" << profile.mass[i]
              << "  running=" << running << '\n';
  }
  const auto starts = round_calibrations(profile.points, profile.mass);
  std::cout << "  rounded calibrations at:";
  for (const Time t : starts) std::cout << ' ' << t;
  std::cout << "  (one per half unit of mass)\n\n";

  // ---- Figure 3: Algorithm 3 fractional assignment -------------------------
  // Run the real LP on the Figure-1 instance and show the witness trace.
  std::cout << "=== Figure 3: fractional job assignment (Algorithm 3) ===\n";
  const TiseFractional fractional = solve_tise_lp(f1, 3 * f1.machines);
  if (fractional.status != LpStatus::kOptimal) {
    std::cerr << "TISE LP did not solve\n";
    return 1;
  }
  const FractionalWitness witness = run_fractional_witness(f1, fractional);
  for (const WitnessCalibration& cal : witness.calibrations) {
    std::cout << "  calibration @" << cal.start << " :";
    for (const auto& [job, fraction] : cal.fractions) {
      std::cout << "  job" << job << "=" << fraction;
    }
    std::cout << '\n';
  }
  std::cout << "  min job coverage        : "
            << witness.telemetry.min_job_coverage << "  (Cor. 6: >= 1)\n"
            << "  max calibration work    : "
            << witness.telemetry.max_calibration_work << "  (Cor. 6: <= T = "
            << f1.T << ")\n"
            << "  max y_j - carryover     : "
            << witness.telemetry.max_y_minus_carryover << "  (Lemma 5: <= 0)\n"
            << "  discarded job fractions : "
            << witness.telemetry.discarded_resets << '\n';
  return 0;
}

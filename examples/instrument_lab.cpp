// Instrument-lab scenario: short-deadline measurements and the
// machines-for-speed trade.
//
// A metrology lab runs short-notice measurements (tight windows, the
// Section-4 regime) on instruments that need calibration every T minutes.
// The lab can choose its MM black box: the fast greedy or the exact
// branch-and-bound (better schedules, more planning time). Separately, a
// second team has relaxed bookings (long windows) but only one instrument
// rack: for them we demonstrate Theorem 14's 1-machine O(1)-speed
// schedule.
//
//   ./instrument_lab [--seed N] [--measurements N] [--exact-mm]
#include <iostream>

#include "gen/generators.hpp"
#include "longwin/long_pipeline.hpp"
#include "mm/mm.hpp"
#include "report/ascii_gantt.hpp"
#include "shortwin/short_pipeline.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  const CliArgs args(argc, argv);

  GenParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  params.n = static_cast<int>(args.get_int("measurements", 18));
  params.T = args.get_int("T", 10);
  params.machines = 2;
  params.horizon = 10 * params.T;
  params.max_proc = params.T - 1;

  // ---- Part 1: short-notice measurements through Algorithm 4 + 5 ---------
  const Instance rush = generate_short_window(params);
  std::cout << "Part 1: " << rush.size()
            << " short-notice measurements (windows < 2T)\n\n";

  Table table({"mm-box", "calibrations", "machines", "sum w_i", "max w_i"});
  const GreedyEdfMM greedy;
  const ExactMM exact;
  const bool use_exact = args.get_bool("exact-mm", true);
  for (const MachineMinimizer* mm :
       {static_cast<const MachineMinimizer*>(&greedy),
        use_exact ? static_cast<const MachineMinimizer*>(&exact) : nullptr}) {
    if (mm == nullptr) continue;
    const ShortWindowResult result = solve_short_window(rush, *mm);
    if (!result.feasible) {
      std::cerr << mm->name() << " failed: " << result.error << '\n';
      return 1;
    }
    const VerifyResult check = verify_ise(rush, result.schedule);
    if (!check.ok()) {
      std::cerr << mm->name() << " verification failed!\n" << check.to_string();
      return 1;
    }
    table.row()
        .cell(mm->name())
        .cell(result.telemetry.total_calibrations)
        .cell(result.schedule.machines_used())
        .cell(static_cast<std::int64_t>(result.telemetry.sum_mm_machines))
        .cell(static_cast<std::int64_t>(result.telemetry.max_mm_machines));
  }
  table.print(std::cout, "short-window schedules by MM black box");

  // ---- Part 2: relaxed bookings on a single fast rack (Theorem 14) -------
  GenParams relaxed = params;
  relaxed.seed += 1;
  relaxed.n = 8;
  relaxed.machines = 1;
  const Instance bookings = generate_long_window(relaxed, 2, 5);
  std::cout << "\nPart 2: " << bookings.size()
            << " relaxed bookings, one rack, speed augmentation\n\n";

  const LongWindowResult slow = solve_long_window(bookings);
  const LongWindowResult fast = solve_long_window_speed(bookings);
  if (!slow.feasible || !fast.feasible) {
    std::cerr << "long-window pipeline failed: " << slow.error << fast.error
              << '\n';
    return 1;
  }
  const VerifyResult fast_check = verify_ise(bookings, fast.schedule);
  if (!fast_check.ok()) {
    std::cerr << "verification failed!\n" << fast_check.to_string();
    return 1;
  }
  std::cout << "Theorem 12 schedule: " << slow.schedule.num_calibrations()
            << " calibrations on " << slow.schedule.machines_used()
            << " speed-1 machines\n";
  std::cout << "Theorem 14 schedule: " << fast.schedule.num_calibrations()
            << " calibrations on " << fast.schedule.machines_used()
            << " machine(s) at speed " << fast.schedule.speed << "\n\n";
  std::cout << render_schedule(bookings, fast.schedule);
  return 0;
}

// Quickstart: build an ISE instance, run the Fineman-Sheridan solver,
// verify the result independently, and print the schedule.
//
//   ./quickstart [--seed N] [--n N] [--T N] [--machines N]
#include <iostream>

#include "gen/generators.hpp"
#include "report/ascii_gantt.hpp"
#include "solver/ise_solver.hpp"
#include "util/cli.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  const CliArgs args(argc, argv);

  // 1. Build an instance: n jobs, m machines, calibration length T.
  //    Jobs carry a release time, a deadline, and a processing time <= T.
  GenParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  params.n = static_cast<int>(args.get_int("n", 10));
  params.T = args.get_int("T", 10);
  params.machines = static_cast<int>(args.get_int("machines", 2));
  params.horizon = 8 * params.T;
  params.max_proc = params.T;
  const Instance instance = generate_mixed(params, /*long_fraction=*/0.5);

  std::cout << "Instance: " << instance.size() << " jobs, m="
            << instance.machines << ", T=" << instance.T << "\n\n";
  std::cout << render_windows(instance) << '\n';

  // 2. Solve. The solver splits jobs by window length (Definition 1),
  //    schedules long-window jobs via the TISE LP pipeline (Theorem 12)
  //    and short-window jobs via the MM reduction (Theorem 20).
  const IseSolveResult result = solve_ise(instance);
  if (!result.feasible) {
    std::cerr << "solver failed: " << result.error << '\n';
    return 1;
  }

  // 3. Trust nothing: re-check with the independent verifier.
  const VerifyResult check = verify_ise(instance, result.schedule);
  if (!check.ok()) {
    std::cerr << "verification failed!\n" << check.to_string();
    return 1;
  }

  // 4. Report.
  std::cout << "Feasible schedule found and verified.\n"
            << "  long jobs          : " << result.long_job_count << '\n'
            << "  short jobs         : " << result.short_job_count << '\n'
            << "  calibrations       : " << result.total_calibrations << '\n'
            << "  machines used      : " << result.schedule.machines_used()
            << " (allotted " << result.machines_allotted << ")\n"
            << "  LP objective (long): " << result.long_telemetry.lp_objective
            << "\n\n";
  std::cout << render_schedule(instance, result.schedule);
  return 0;
}

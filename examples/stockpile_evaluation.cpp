// Stockpile-evaluation scenario: the application the ISE problem models.
//
// A testing facility receives waves of devices to evaluate. Each device
// test is a nonpreemptive job with an arrival (release) time and a due
// date; test equipment must be re-calibrated every T time units to give
// trustworthy measurements, and calibrations dominate operating cost.
//
// This example builds a bursty mixed-window workload (inspection campaigns
// produce clusters of arrivals), runs the paper's solver and two naive
// policies, and compares calibration counts against the combinatorial
// lower bound.
//
//   ./stockpile_evaluation [--seed N] [--devices N] [--campaigns N]
#include <iostream>

#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "gen/generators.hpp"
#include "solver/ise_solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  const CliArgs args(argc, argv);

  GenParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  params.n = static_cast<int>(args.get_int("devices", 24));
  params.T = args.get_int("T", 12);
  params.machines = static_cast<int>(args.get_int("machines", 3));
  params.horizon = 20 * params.T;
  params.min_proc = 2;
  params.max_proc = params.T - 1;
  const int campaigns = static_cast<int>(args.get_int("campaigns", 4));

  const Instance instance =
      generate_clustered(params, campaigns, /*burst_span=*/params.T,
                         /*long_windows=*/false);
  // Half the devices get relaxed due dates (long windows): routine checks.
  Instance mixed = instance;
  for (std::size_t j = 0; j < mixed.jobs.size(); j += 2) {
    mixed.jobs[j].deadline = mixed.jobs[j].release + 4 * params.T;
  }

  std::cout << "Stockpile evaluation: " << mixed.size() << " device tests, "
            << campaigns << " campaigns, T=" << params.T << ", "
            << params.machines << " baseline machines\n\n";

  const std::int64_t lower = calibration_lower_bound(mixed);

  Table table({"policy", "feasible", "calibrations", "machines", "vs-LB"});
  auto report = [&](const std::string& name, bool feasible,
                    std::size_t calibrations, int machines) {
    auto row = table.row();
    row.cell(name).cell(std::string(feasible ? "yes" : "NO"));
    if (feasible) {
      row.cell(calibrations).cell(machines);
      row.cell(static_cast<double>(calibrations) / static_cast<double>(lower), 2);
    } else {
      row.cell("-").cell("-").cell("-");
    }
  };

  // The paper's algorithm.
  const IseSolveResult ours = solve_ise(mixed);
  if (ours.feasible) {
    const VerifyResult check = verify_ise(mixed, ours.schedule);
    if (!check.ok()) {
      std::cerr << "verification failed!\n" << check.to_string();
      return 1;
    }
  }
  report("fineman-sheridan", ours.feasible, ours.total_calibrations,
         ours.feasible ? ours.schedule.machines_used() : 0);

  // Naive policies.
  const PerJobCalibration per_job;
  const SaturateCalibration saturate;
  for (const IseBaseline* baseline :
       {static_cast<const IseBaseline*>(&per_job),
        static_cast<const IseBaseline*>(&saturate)}) {
    const BaselineResult result = baseline->solve(mixed);
    if (result.feasible) {
      const VerifyResult check = verify_ise(mixed, result.schedule);
      if (!check.ok()) {
        std::cerr << baseline->name() << " verification failed!\n"
                  << check.to_string();
        return 1;
      }
    }
    report(baseline->name(), result.feasible,
           result.feasible ? result.schedule.num_calibrations() : 0,
           result.feasible ? result.schedule.machines_used() : 0);
  }

  std::cout << "calibration lower bound: " << lower << "\n\n";
  table.print(std::cout, "calibration cost by policy");
  std::cout << "\nThe solver shares calibrations across device tests; the\n"
               "per-test policy pays one calibration each, and keeping all\n"
               "machines perpetually calibrated pays per time slice.\n";
  return 0;
}

// MM toolbox tour: the machine-minimization black boxes behind Theorem 20,
// their lower bounds, speed augmentation, and the Section-1 reduction.
//
// The paper treats MM algorithms as interchangeable black boxes; this
// example runs all of them on one workload so their trade-offs are visible:
//   greedy-edf    polynomial, no guarantee, usually near-exact
//   lp-rounding   start-time LP + randomized rounding (Raghavan-Thompson)
//   exact-bnb     exponential reference
//   speed2x(...)  Theorem 1's s-speed augmentation
// and closes the loop with mm_via_ise: solving MM *through* the ISE solver
// (T = span), the direction the paper uses for hardness.
//
//   ./mm_toolbox [--seed N] [--n N]
#include <cmath>
#include <iostream>
#include <memory>

#include "gen/generators.hpp"
#include "mm/lower_bounds.hpp"
#include "mm/lp_bound.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "mm/mm.hpp"
#include "solver/mm_via_ise.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace calisched;
  const CliArgs args(argc, argv);

  GenParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 21));
  params.n = static_cast<int>(args.get_int("n", 12));
  params.T = 10;
  params.machines = 3;
  params.horizon = 60;
  params.max_proc = 8;
  const Instance instance = generate_short_window(params);

  std::cout << "Workload: " << instance.size() << " jobs over ["
            << instance.min_release() << ", " << instance.max_deadline()
            << "), total work " << instance.total_work() << "\n\n";

  std::cout << "Lower bounds on machines:\n"
            << "  combinatorial (interval load) : " << mm_lower_bound(instance)
            << '\n';
  if (const auto lp = mm_lp_bound(instance)) {
    std::cout << "  preemptive LP                 : " << format_double(*lp, 3)
              << '\n';
  }
  if (const auto lp = mm_start_time_lp_bound(instance)) {
    std::cout << "  start-time LP                 : " << format_double(*lp, 3)
              << "  (certified bound " << std::ceil(*lp - 1e-6) << ")\n";
  }
  std::cout << '\n';

  Table table({"box", "machines", "speed", "verified"});
  const auto greedy = std::make_shared<GreedyEdfMM>();
  const auto rounding = std::make_shared<LpRoundingMM>();
  const auto exact = std::make_shared<ExactMM>();
  const auto fast = std::make_shared<SpeedupMM>(exact, 2);
  for (const auto& box :
       {std::static_pointer_cast<const MachineMinimizer>(greedy),
        std::static_pointer_cast<const MachineMinimizer>(rounding),
        std::static_pointer_cast<const MachineMinimizer>(exact),
        std::static_pointer_cast<const MachineMinimizer>(fast)}) {
    const MMResult result = box->minimize(instance);
    if (!result.feasible) {
      std::cerr << box->name() << " failed\n";
      return 1;
    }
    const VerifyResult check = verify_mm(instance, result.schedule);
    if (!check.ok()) {
      std::cerr << box->name() << " verification failed!\n" << check.to_string();
      return 1;
    }
    table.row()
        .cell(result.algorithm)
        .cell(std::int64_t{result.schedule.machines})
        .cell(result.schedule.speed)
        .cell(true);
  }
  table.print(std::cout, "MM black boxes on the same workload");

  // --- the Section-1 reduction in reverse ------------------------------------
  const MmViaIseResult reduced = mm_via_ise(instance);
  if (!reduced.feasible) {
    std::cerr << "mm_via_ise failed: " << reduced.error << '\n';
    return 1;
  }
  if (!verify_mm(instance, reduced.schedule).ok()) {
    std::cerr << "mm_via_ise verification failed\n";
    return 1;
  }
  std::cout << "\nmm_via_ise (T = span, one machine per calibration): "
            << reduced.schedule.machines
            << " machines — the reduction is about hardness, not quality; "
               "it inherits the ISE pipeline's constant factors.\n";
  return 0;
}
